"""Quickstart: build a database, run a correlated query, decorrelate it.

Run:  python examples/quickstart.py
"""

from repro import Database, Strategy


def main() -> None:
    db = Database()
    db.execute_script(
        """
        CREATE TABLE dept (
            name VARCHAR(30) PRIMARY KEY,
            budget FLOAT,
            num_emps INT,
            building VARCHAR(10)
        );
        CREATE TABLE emp (
            empno INT PRIMARY KEY,
            name VARCHAR(30),
            building VARCHAR(10),
            salary FLOAT
        );
        CREATE INDEX emp_building ON emp (building);

        INSERT INTO dept VALUES
            ('sales',    5000, 4, 'B1'),
            ('support',  8000, 1, 'B1'),
            ('research', 2000, 3, 'B2'),
            ('ops',      9000, 2, 'B2'),
            ('tiny',      500, 1, 'B9');   -- B9 has no employees!

        INSERT INTO emp VALUES
            (1, 'alice', 'B1', 100), (2, 'bob',   'B1', 120),
            (3, 'carol', 'B1',  90), (4, 'dan',   'B2',  80),
            (5, 'erin',  'B2',  95), (6, 'frank', 'B3',  70);
        """
    )

    # The paper's running example (section 2): departments with more
    # employees on the books than actually work in their building.
    query = """
        SELECT d.name FROM dept d
        WHERE d.budget < 10000 AND d.num_emps >
          (SELECT count(*) FROM emp e WHERE d.building = e.building)
    """

    print("=== Nested iteration (tuple-at-a-time) ===")
    ni = db.execute(query, strategy=Strategy.NESTED_ITERATION)
    print("rows:", sorted(ni.rows))
    print("subquery invocations:", ni.metrics.subquery_invocations)

    print("\n=== Magic decorrelation (set-oriented) ===")
    magic = db.execute(query, strategy=Strategy.MAGIC)
    print("rows:", sorted(magic.rows))
    print("subquery invocations:", magic.metrics.subquery_invocations)
    assert sorted(ni.rows) == sorted(magic.rows)

    print("\n=== The rewritten query graph (EXPLAIN) ===")
    print(db.explain(query, Strategy.MAGIC))


if __name__ == "__main__":
    main()
