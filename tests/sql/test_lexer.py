"""Unit tests for the SQL lexer."""

import pytest

from repro.errors import LexError
from repro.sql import Token, TokenKind, tokenize


def kinds(text):
    return [t.kind for t in tokenize(text)[:-1]]


def texts(text):
    return [t.text for t in tokenize(text)[:-1]]


class TestTokenize:
    def test_idents_and_keywords_are_idents(self):
        tokens = tokenize("SELECT name FROM dept")
        assert [t.kind for t in tokens[:-1]] == [TokenKind.IDENT] * 4
        assert tokens[0].matches_keyword("select")
        assert tokens[0].matches_keyword("SELECT")
        assert not tokens[1].matches_keyword("SELECT")

    def test_numbers(self):
        tokens = tokenize("1 2.5 0.2 1e3 2E-2 10000")
        values = [t.value for t in tokens[:-1]]
        assert values == [1, 2.5, 0.2, 1000.0, 0.02, 10000]
        assert isinstance(values[0], int)
        assert isinstance(values[1], float)

    def test_number_starting_with_dot(self):
        tokens = tokenize(".5")
        assert tokens[0].value == 0.5

    def test_strings_with_escapes(self):
        tokens = tokenize("'FRANCE' 'it''s'")
        assert tokens[0].value == "FRANCE"
        assert tokens[1].value == "it's"

    def test_unterminated_string(self):
        with pytest.raises(LexError):
            tokenize("'abc")

    def test_symbols_greedy(self):
        assert texts("a<=b<>c>=d!=e") == ["a", "<=", "b", "<>", "c", ">=", "d", "!=", "e"]

    def test_dot_qualification(self):
        assert texts("d.building") == ["d", ".", "building"]

    def test_comments_skipped(self):
        tokens = tokenize("SELECT 1 -- comment here\n, 2")
        assert [t.text for t in tokens[:-1]] == ["SELECT", "1", ",", "2"]

    def test_line_and_column_tracking(self):
        tokens = tokenize("SELECT\n  name")
        assert tokens[0].line == 1 and tokens[0].column == 1
        assert tokens[1].line == 2 and tokens[1].column == 3

    def test_invalid_character(self):
        with pytest.raises(LexError) as exc:
            tokenize("SELECT @")
        assert "line 1" in str(exc.value)

    def test_quoted_identifier(self):
        tokens = tokenize('"select" x')
        assert tokens[0].kind is TokenKind.IDENT
        assert tokens[0].text == "select"

    def test_eof_token_present(self):
        tokens = tokenize("")
        assert len(tokens) == 1
        assert tokens[0].kind is TokenKind.EOF

    def test_ident_with_underscore_and_digits(self):
        assert texts("ps_supplycost l_quantity x1") == [
            "ps_supplycost", "l_quantity", "x1",
        ]
