"""Unit tests for the SQL parser, including every paper query."""

import pytest

from repro.errors import ParseError
from repro.sql import ast
from repro.sql.parser import parse_expression, parse_statement, parse_statements


class TestExpressions:
    def test_precedence_arith(self):
        e = parse_expression("1 + 2 * 3")
        assert isinstance(e, ast.BinaryOp) and e.op == "+"
        assert isinstance(e.right, ast.BinaryOp) and e.right.op == "*"

    def test_precedence_bool(self):
        e = parse_expression("a = 1 OR b = 2 AND c = 3")
        assert isinstance(e, ast.Or)
        assert isinstance(e.items[1], ast.And)

    def test_not_binds_tighter_than_and(self):
        e = parse_expression("NOT a = 1 AND b = 2")
        assert isinstance(e, ast.And)
        assert isinstance(e.items[0], ast.Not)

    def test_unary_minus_folds_literals(self):
        e = parse_expression("-5")
        assert e == ast.Literal(-5)

    def test_comparison_ops(self):
        for op in ("=", "<>", "<", "<=", ">", ">="):
            e = parse_expression(f"a {op} b")
            assert isinstance(e, ast.Comparison) and e.op == op
        assert parse_expression("a != b").op == "<>"

    def test_qualified_names(self):
        e = parse_expression("d.building")
        assert e == ast.Name(("d", "building"))

    def test_between_like_in(self):
        e = parse_expression("x BETWEEN 1 AND 10")
        assert isinstance(e, ast.Between) and not e.negated
        e = parse_expression("x NOT BETWEEN 1 AND 10")
        assert e.negated
        e = parse_expression("s LIKE '%BRASS%'")
        assert isinstance(e, ast.Like)
        e = parse_expression("r IN ('AMERICA', 'EUROPE')")
        assert isinstance(e, ast.InList) and len(e.items) == 2
        e = parse_expression("r NOT IN (1, 2)")
        assert e.negated

    def test_is_null(self):
        assert parse_expression("x IS NULL") == ast.IsNull(ast.Name(("x",)))
        assert parse_expression("x IS NOT NULL").negated

    def test_aggregates(self):
        assert parse_expression("count(*)") == ast.AggregateCall("count", None)
        e = parse_expression("COUNT(DISTINCT x)")
        assert e.distinct and e.func == "count"
        e = parse_expression("sum(a * b)")
        assert e.func == "sum" and isinstance(e.argument, ast.BinaryOp)

    def test_function_call(self):
        e = parse_expression("coalesce(x, 0)")
        assert isinstance(e, ast.FunctionCall)
        assert e.name == "coalesce" and len(e.args) == 2

    def test_literals(self):
        assert parse_expression("NULL") == ast.Literal(None)
        assert parse_expression("TRUE") == ast.Literal(True)
        assert parse_expression("'x''y'") == ast.Literal("x'y")

    def test_scalar_subquery(self):
        e = parse_expression("(SELECT count(*) FROM emp)")
        assert isinstance(e, ast.ScalarSubquery)
        assert isinstance(e.query, ast.Select)

    def test_exists(self):
        e = parse_expression("EXISTS (SELECT 1 FROM emp)")
        assert isinstance(e, ast.Exists) and not e.negated
        e = parse_expression("NOT EXISTS (SELECT 1 FROM emp)")
        assert isinstance(e, ast.Not)
        assert isinstance(e.operand, ast.Exists)

    def test_in_subquery(self):
        e = parse_expression("x IN (SELECT y FROM t)")
        assert isinstance(e, ast.InSubquery)
        e = parse_expression("x NOT IN (SELECT y FROM t)")
        assert e.negated

    def test_quantified_comparison(self):
        e = parse_expression("x > ALL (SELECT y FROM t)")
        assert isinstance(e, ast.QuantifiedComparison)
        assert e.quantifier == "all" and e.op == ">"
        e = parse_expression("x = SOME (SELECT y FROM t)")
        assert e.quantifier == "any"

    def test_searched_case(self):
        e = parse_expression("CASE WHEN a = 1 THEN 'x' WHEN a = 2 THEN 'y' ELSE 'z' END")
        assert isinstance(e, ast.Case)
        assert len(e.whens) == 2
        assert e.otherwise == ast.Literal("z")

    def test_case_without_else(self):
        e = parse_expression("CASE WHEN a = 1 THEN 'x' END")
        assert e.otherwise is None

    def test_simple_case_unsupported(self):
        with pytest.raises(ParseError):
            parse_expression("CASE a WHEN 1 THEN 'x' END")

    def test_concat(self):
        e = parse_expression("a || b")
        assert isinstance(e, ast.BinaryOp) and e.op == "||"


class TestSelect:
    def test_minimal(self):
        s = parse_statement("SELECT 1")
        assert isinstance(s, ast.Select)
        assert s.items[0].expr == ast.Literal(1)
        assert s.from_items == ()

    def test_star_and_qualified_star(self):
        s = parse_statement("SELECT *, s.* FROM suppliers s")
        assert s.items[0].expr == ast.Star()
        assert s.items[1].expr == ast.Star(qualifier="s")

    def test_aliases(self):
        s = parse_statement("SELECT a AS x, b y FROM t")
        assert s.items[0].alias == "x"
        assert s.items[1].alias == "y"

    def test_where_group_having(self):
        s = parse_statement(
            "SELECT building, count(*) FROM emp WHERE salary > 10 "
            "GROUP BY building HAVING count(*) > 2"
        )
        assert s.where is not None
        assert len(s.group_by) == 1
        assert s.having is not None

    def test_distinct(self):
        assert parse_statement("SELECT DISTINCT building FROM emp").distinct

    def test_order_limit(self):
        s = parse_statement("SELECT a FROM t ORDER BY a DESC, b LIMIT 10")
        assert s.order_by[0].descending
        assert not s.order_by[1].descending
        assert s.limit == 10

    def test_explicit_joins(self):
        s = parse_statement(
            "SELECT * FROM dept d LEFT OUTER JOIN emp e ON d.building = e.building"
        )
        join = s.from_items[0]
        assert isinstance(join, ast.Join) and join.kind == "left"
        s = parse_statement("SELECT * FROM a JOIN b ON a.x = b.x JOIN c ON b.y = c.y")
        outer = s.from_items[0]
        assert isinstance(outer.left, ast.Join)

    def test_loj_keyword(self):
        # The paper's Dayal-rewrite snippet uses "LOJ" as the operator name.
        s = parse_statement("SELECT * FROM dept d LOJ emp e ON d.b = e.b")
        assert s.from_items[0].kind == "left"

    def test_derived_table_standard(self):
        s = parse_statement(
            "SELECT * FROM (SELECT building FROM emp) AS t(bldg)"
        )
        dt = s.from_items[0]
        assert isinstance(dt, ast.DerivedTable)
        assert dt.alias == "t" and dt.column_aliases == ("bldg",)

    def test_derived_table_starburst_syntax(self):
        s = parse_statement(
            "SELECT sumbal FROM DT(sumbal) AS (SELECT sum(bal) FROM customers)"
        )
        dt = s.from_items[0]
        assert isinstance(dt, ast.DerivedTable)
        assert dt.alias == "dt" and dt.column_aliases == ("sumbal",)

    def test_union(self):
        s = parse_statement("(SELECT a FROM t) UNION ALL (SELECT b FROM u)")
        assert isinstance(s, ast.SetOp)
        assert s.op == "union" and s.all
        s = parse_statement("SELECT a FROM t UNION SELECT b FROM u")
        assert isinstance(s, ast.SetOp) and not s.all

    def test_intersect_except(self):
        assert parse_statement("SELECT a FROM t INTERSECT SELECT a FROM u").op == "intersect"
        assert parse_statement("SELECT a FROM t EXCEPT SELECT a FROM u").op == "except"

    def test_trailing_semicolon_and_garbage(self):
        parse_statement("SELECT 1;")
        with pytest.raises(ParseError):
            parse_statement("SELECT 1 SELECT 2")

    def test_error_reports_location(self):
        with pytest.raises(ParseError) as exc:
            parse_statement("SELECT FROM t")
        assert "line 1" in str(exc.value)


class TestPaperQueries:
    def test_section2_example(self):
        s = parse_statement(
            """
            Select D.name From Dept D
            Where D.budget < 10000 and D.num_emps >
              (Select Count(*) From Emp E Where D.building = E.building)
            """
        )
        assert isinstance(s, ast.Select)
        comparison = s.where.items[1]
        assert isinstance(comparison.right, ast.ScalarSubquery)

    def test_query1(self):
        s = parse_statement(
            """
            Select s.s_name, s.s_acctbal, s.s_address, s.s_phone, s.s_comment
            From Parts p, Suppliers s, Partsupp ps
            Where s.s_nation = 'FRANCE' and p.p_size = 15 and p.p_type = 'BRASS'
              and p.p_partkey = ps.ps_partkey and s.s_suppkey = ps.ps_suppkey
              and ps.ps_supplycost =
                (Select min(ps1.ps_supplycost)
                 From Partsupp ps1, Suppliers s1
                 Where p.p_partkey = ps1.ps_partkey
                   and s1.s_suppkey = ps1.ps_suppkey and s1.s_nation = 'FRANCE')
            """
        )
        assert len(s.from_items) == 3
        assert len(s.where.items) == 6

    def test_query2(self):
        s = parse_statement(
            """
            Select sum(l.l_extendedprice * l.l_quantity) / 5
            From Lineitem l, Parts p
            Where p.p_partkey = l.l_partkey and p.p_brand = 'Brand#23'
              and p.p_container = '6 PACK' and l.l_quantity <
                (Select 0.2 * avg(l1.l_quantity)
                 From Lineitem l1 Where l1.l_partkey = p.p_partkey)
            """
        )
        head = s.items[0].expr
        assert isinstance(head, ast.BinaryOp) and head.op == "/"

    def test_query3_with_union_and_starburst_tables(self):
        s = parse_statement(
            """
            Select s.*, sumbal From Suppliers s, DT(sumbal) AS
              (Select sum(bal) From DDT(bal) AS
                ((Select a.c_acctbal From Customers a
                  Where a.c_mktsegment = 'BUILDING' and a.c_nation = s.s_nation)
                 Union All
                 (Select b.c_acctbal From Customers b
                  Where b.c_mktsegment = 'AUTOMOBILE' and b.c_nation = s.s_nation)))
            Where s.s_region = 'EUROPE'
            """
        )
        dt = s.from_items[1]
        assert isinstance(dt, ast.DerivedTable)
        inner = dt.query
        assert isinstance(inner, ast.Select)
        ddt = inner.from_items[0]
        assert isinstance(ddt, ast.DerivedTable)
        assert isinstance(ddt.query, ast.SetOp) and ddt.query.all

    def test_magic_rewrite_views_from_paper(self):
        statements = parse_statements(
            """
            Create View Supp_Dept As (Select name, building, num_emps
                                      From Dept Where budget < 10000);
            Create View Magic AS (Select Distinct building From Supp_Dept);
            Create View Decorr_SubQuery AS
              (Select M.building, Count(*) AS cnt
               From Magic M, Emp E Where M.building = E.building
               GroupBy M.building);
            """.replace("GroupBy", "Group By")
        )
        assert len(statements) == 3
        assert all(isinstance(s, ast.CreateView) for s in statements)


class TestDDL:
    def test_create_table(self):
        s = parse_statement(
            "CREATE TABLE dept (name VARCHAR(30) NOT NULL, budget FLOAT, "
            "num_emps INT, building VARCHAR(10), PRIMARY KEY (name))"
        )
        assert isinstance(s, ast.CreateTable)
        assert s.primary_key == ("name",)
        assert s.columns[0].not_null
        assert s.columns[1].type_name == "FLOAT"

    def test_inline_primary_key(self):
        s = parse_statement("CREATE TABLE t (id INT PRIMARY KEY, v TEXT)")
        assert s.primary_key == ("id",)
        assert s.columns[0].not_null

    def test_create_index(self):
        s = parse_statement("CREATE INDEX i ON partsupp (ps_suppkey)")
        assert isinstance(s, ast.CreateIndex)
        assert not s.unique and s.kind == "hash"
        s = parse_statement("CREATE UNIQUE INDEX i ON t (a, b) USING SORTED")
        assert s.unique and s.kind == "sorted" and s.columns == ("a", "b")

    def test_drop_index(self):
        s = parse_statement("DROP INDEX i ON partsupp")
        assert isinstance(s, ast.DropIndex)
        assert (s.name, s.table) == ("i", "partsupp")

    def test_create_view(self):
        s = parse_statement("CREATE VIEW v AS SELECT 1")
        assert isinstance(s, ast.CreateView)

    def test_insert(self):
        s = parse_statement(
            "INSERT INTO dept (name, budget) VALUES ('d1', 500), ('d2', NULL)"
        )
        assert isinstance(s, ast.Insert)
        assert len(s.rows) == 2
        assert s.rows[1][1] == ast.Literal(None)

    def test_unknown_type_rejected(self):
        with pytest.raises(ParseError):
            parse_statement("CREATE TABLE t (a BLOB)")


class TestScripts:
    def test_multi_statement(self):
        statements = parse_statements(
            "CREATE TABLE t (a INT); INSERT INTO t VALUES (1); SELECT a FROM t;"
        )
        assert len(statements) == 3
