"""Unit tests for the SQL printer (statement-level round trips)."""

import pytest

from repro.sql.parser import parse_statement
from repro.sql.printer import to_sql

ROUND_TRIP_STATEMENTS = [
    "SELECT 1",
    "SELECT DISTINCT a, b AS bee FROM t",
    "SELECT a FROM t WHERE a > 1 AND b IN ('x', 'y') ORDER BY a DESC LIMIT 5",
    "SELECT count(*) FROM t GROUP BY a HAVING count(*) > 2",
    "SELECT t.a FROM t AS t JOIN u AS u ON t.a = u.a",
    "SELECT t.a FROM t AS t LEFT OUTER JOIN u AS u ON t.a = u.a",
    "SELECT a FROM (SELECT b AS a FROM u) AS sub",
    "(SELECT a FROM t) UNION ALL (SELECT b FROM u)",
    "(SELECT a FROM t) INTERSECT (SELECT b FROM u)",
    "(SELECT a FROM t) INTERSECT ALL (SELECT b FROM u)",
    "(SELECT a FROM t) EXCEPT ALL (SELECT b FROM u)",
    "SELECT a FROM t WHERE EXISTS (SELECT 1 FROM u WHERE u.x = t.a)",
    "SELECT a FROM t WHERE a NOT IN (SELECT b FROM u)",
    "SELECT a FROM t WHERE a > ALL (SELECT b FROM u)",
    "SELECT a FROM t WHERE a BETWEEN 1 AND 2 OR a IS NOT NULL",
    "SELECT coalesce(a, 0), count(DISTINCT b) FROM t",
    "SELECT a FROM t WHERE s LIKE '%x%' AND NOT (a = 1)",
    "CREATE TABLE t (a INT NOT NULL, b FLOAT, PRIMARY KEY (a))",
    "CREATE UNIQUE INDEX i ON t (a, b) USING SORTED",
    "CREATE INDEX i ON t (a)",
    "DROP INDEX i ON t",
    "CREATE VIEW v AS SELECT a FROM t",
    "INSERT INTO t (a, b) VALUES (1, 'x''y'), (2, NULL)",
]


@pytest.mark.parametrize("sql", ROUND_TRIP_STATEMENTS)
def test_round_trip(sql):
    first = parse_statement(sql)
    printed = to_sql(first)
    second = parse_statement(printed)
    assert second == first, printed


def test_string_escaping():
    statement = parse_statement("SELECT 'it''s'")
    assert "''" in to_sql(statement)


def test_negative_literal():
    statement = parse_statement("SELECT -5")
    assert to_sql(statement) == "SELECT -5"


def test_starburst_derived_table_printed_as_standard_form():
    statement = parse_statement("SELECT s FROM DT(s) AS (SELECT sum(a) FROM t)")
    printed = to_sql(statement)
    reparsed = parse_statement(printed)
    assert reparsed == statement
