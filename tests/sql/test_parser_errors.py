"""Parser error-path coverage: every message carries a location."""

import pytest

from repro.errors import ParseError
from repro.sql.parser import parse_expression, parse_statement

BAD_STATEMENTS = [
    ("SELECT", "expected an expression"),
    ("SELECT a FROM", "table name"),
    ("SELECT a FROM t WHERE", "expression"),
    ("SELECT a FROM t GROUP", "BY"),
    ("SELECT a FROM t ORDER a", "BY"),
    ("SELECT a FROM t LIMIT x", "integer"),
    ("SELECT a FROM t LIMIT 1.5", "integer"),
    ("SELECT a AS FROM t", "alias"),
    ("SELECT * FROM (SELECT 1)", "alias"),
    ("SELECT a FROM t JOIN u", "ON"),
    ("SELECT count(* FROM t", ")"),
    ("SELECT a FROM t WHERE a NOT 5", "trailing"),
    ("SELECT a FROM t WHERE a BETWEEN 1", "AND"),
    ("CREATE", "TABLE, INDEX or VIEW"),
    ("CREATE TABLE t", "("),
    ("CREATE TABLE t (a)", "type name"),
    ("CREATE INDEX i ON t", "("),
    ("CREATE INDEX i ON t (a) USING btree", "HASH or SORTED"),
    ("DROP INDEX i", "ON"),
    ("INSERT INTO t", "VALUES"),
    ("SELECT a FROM t;;; SELECT", "trailing"),
    ("SELECT a = ANY SELECT 1", "("),
]


@pytest.mark.parametrize("sql,fragment", BAD_STATEMENTS)
def test_error_message_mentions_cause(sql, fragment):
    with pytest.raises(ParseError) as exc:
        parse_statement(sql)
    message = str(exc.value)
    assert fragment.lower() in message.lower(), message
    assert "line" in message  # location always reported


def test_multiline_error_location():
    from repro.errors import LexError

    with pytest.raises(LexError) as exc:
        parse_statement("SELECT a\nFROM t\nWHERE @@")
    assert "line 3" in str(exc.value)


def test_expression_trailing_garbage():
    with pytest.raises(ParseError):
        parse_expression("1 + 2 3")


def test_reserved_word_as_column_rejected():
    with pytest.raises(ParseError):
        parse_statement("SELECT select FROM t")


def test_quoted_reserved_word_allowed_as_table():
    # Double quotes turn reserved words into ordinary identifiers.
    statement = parse_statement('SELECT a FROM "select"')
    from repro.sql import ast

    ref = statement.from_items[0]
    assert isinstance(ref, ast.TableRef) and ref.name == "select"
