"""Measured-vs-simulated calibration of the section-6 parallel claim."""

import math

import pytest

from repro.bench.calibration import qerror, render_calibration, run_calibration
from repro.bench.history import load_history
from repro.tpcd import load_empdept


@pytest.fixture(scope="module")
def data():
    catalog = load_empdept(n_depts=12, n_emps=60, n_buildings=5, seed=7)
    return list(catalog.table("dept").rows), list(catalog.table("emp").rows)


class TestQError:
    def test_perfect_prediction_is_one(self):
        assert qerror(3.0, 3.0) == 1.0
        assert qerror(0.0, 0.0) == 1.0

    def test_symmetric(self):
        assert qerror(2.0, 8.0) == qerror(8.0, 2.0) == 4.0

    def test_zero_against_nonzero_is_infinite(self):
        assert math.isinf(qerror(0.0, 5.0))
        assert math.isinf(qerror(5.0, 0.0))


class TestRunCalibration:
    def test_fault_free_run_is_exact_and_recorded(self, data, tmp_path):
        dept_rows, emp_rows = data
        history = tmp_path / "hist.jsonl"
        report = run_calibration(
            dept_rows, emp_rows, n_workers=2,
            history_path=str(history),
            heartbeat_interval=0.02, heartbeat_timeout=0.5,
        )
        assert report["answers_agree"]
        assert report["calibration"]["messages_exact"]
        assert report["calibration"]["ni_message_qerror"] == 1.0
        assert report["calibration"]["decorrelated_message_qerror"] == 1.0
        # NI must pay more traffic than the decorrelated plan on both
        # sides -- the paper's section-6 claim, simulated and measured.
        assert (report["measured"]["ni"]["messages"]
                > report["measured"]["decorrelated"]["messages"])
        assert (report["simulated"]["ni"]["messages"]
                > report["simulated"]["decorrelated"]["messages"])

        records = load_history(str(history))
        assert [r["benchmark"] for r in records] == [
            "parallel_section6", "parallel_section6", "parallel_calibration",
        ]
        assert {r.get("strategy") for r in records[:2]} == {
            "nested_iteration", "magic_decorrelated",
        }
        assert records[2]["messages_exact"] is True

    def test_record_history_false_writes_nothing(self, data, tmp_path):
        dept_rows, emp_rows = data
        history = tmp_path / "hist.jsonl"
        report = run_calibration(
            dept_rows, emp_rows, n_workers=2,
            history_path=str(history), record_history=False,
            heartbeat_interval=0.02, heartbeat_timeout=0.5,
        )
        assert report["answers_agree"]
        assert not history.exists()

    def test_render_is_human_readable(self, data, tmp_path):
        dept_rows, emp_rows = data
        report = run_calibration(
            dept_rows, emp_rows, n_workers=2, record_history=False,
            heartbeat_interval=0.02, heartbeat_timeout=0.5,
        )
        text = render_calibration(report)
        assert "messages exact: True" in text
        assert "answers agree: True" in text
        assert "NI/decorr ratio" in text
