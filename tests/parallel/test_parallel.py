"""Tests for the shared-nothing parallel simulator (paper section 6)."""

import pytest

from repro import Database
from repro.parallel import (
    Cluster,
    ParallelMetrics,
    hash_partition,
    simulate_decorrelated,
    simulate_nested_iteration,
    sweep_nodes,
)
from repro.tpcd import EMP_DEPT_QUERY, load_empdept


@pytest.fixture(scope="module")
def empdept_rows():
    catalog = load_empdept(n_depts=60, n_emps=500, n_buildings=12, seed=7)
    return (
        list(catalog.table("dept").rows),
        list(catalog.table("emp").rows),
        catalog,
    )


class TestCluster:
    def test_partitioning_covers_all_rows(self):
        cluster = Cluster(4)
        rows = [(i, f"v{i}") for i in range(100)]
        cluster.load_partitioned("t", rows, key=lambda r: r[0])
        total = sum(len(cluster.local_rows("t", i)) for i in range(4))
        assert total == 100

    def test_same_key_same_node(self):
        cluster = Cluster(4)
        rows = [(i % 5, i) for i in range(50)]
        cluster.load_partitioned("t", rows, key=lambda r: r[0])
        for node in range(4):
            keys = {r[0] for r in cluster.local_rows("t", node)}
            for other in range(node + 1, 4):
                assert keys.isdisjoint(
                    {r[0] for r in cluster.local_rows("t", other)}
                )

    def test_loopback_is_free(self):
        cluster = Cluster(2)
        cluster.send(0, 0, 10)
        assert cluster.nodes[0].messages_sent == 0

    def test_broadcast_counts(self):
        cluster = Cluster(5)
        cluster.broadcast(2)
        assert cluster.nodes[2].messages_sent == 4
        assert sum(n.messages_received for n in cluster.nodes) == 4

    def test_null_key_routes_to_node_zero(self):
        cluster = Cluster(3)
        assert cluster.owner(None) == 0

    def test_hash_partition_counts_row_shipping(self):
        cluster = Cluster(2)
        source = [[(1,), (2,)], [(3,), (4,)]]
        result = hash_partition(cluster, source, key=lambda r: r[0])
        assert sum(len(p) for p in result) == 4
        shipped = sum(n.messages_sent for n in cluster.nodes)
        locally_kept = 4 - shipped
        assert 0 <= shipped <= 4 and locally_kept >= 0

    def test_single_node_cluster(self):
        cluster = Cluster(1)
        cluster.broadcast(0)
        assert cluster.nodes[0].messages_sent == 0


class TestSimulations:
    def test_both_strategies_agree_with_engine(self, empdept_rows):
        dept, emp, catalog = empdept_rows
        oracle = sorted(Database(catalog).execute(EMP_DEPT_QUERY).rows)
        for n in (1, 2, 3, 8):
            ni = simulate_nested_iteration(dept, emp, n)
            magic = simulate_decorrelated(dept, emp, n)
            assert ni.answer == oracle, f"NI wrong at n={n}"
            assert magic.answer == oracle, f"decorrelated wrong at n={n}"

    def test_ni_fragments_quadratic(self, empdept_rows):
        dept, emp, _ = empdept_rows
        for n in (2, 4, 8):
            ni = simulate_nested_iteration(dept, emp, n)
            assert ni.fragments == n * n  # every node serves every node
            magic = simulate_decorrelated(dept, emp, n)
            assert magic.fragments == n  # one local pipeline per node

    def test_ni_messages_grow_with_nodes(self, empdept_rows):
        dept, emp, _ = empdept_rows
        ni2 = simulate_nested_iteration(dept, emp, 2)
        ni8 = simulate_nested_iteration(dept, emp, 8)
        assert ni8.messages > ni2.messages
        # Two messages (request + reply) per qualifying dept per remote node.
        qualifying = sum(1 for d in dept if d[1] is not None and d[1] < 10000)
        assert ni8.messages == qualifying * 7 * 2

    def test_decorrelated_messages_bounded_by_repartitioning(self, empdept_rows):
        dept, emp, _ = empdept_rows
        magic = simulate_decorrelated(dept, emp, 8)
        qualifying = sum(1 for d in dept if d[1] is not None and d[1] < 10000)
        # At most one shipment per supp row plus one per emp row.
        assert magic.messages <= qualifying + len(emp)

    def test_decorrelated_beats_ni_at_scale(self, empdept_rows):
        dept, emp, _ = empdept_rows
        for n in (2, 4, 8):
            ni = simulate_nested_iteration(dept, emp, n)
            magic = simulate_decorrelated(dept, emp, n)
            assert magic.makespan < ni.makespan
            assert magic.rows_processed < ni.rows_processed

    def test_ni_work_does_not_scale_down(self, empdept_rows):
        # NI's total row work *grows* with the cluster: every invocation
        # scans every partition (the section 6.1 pathology).
        dept, emp, _ = empdept_rows
        ni1 = simulate_nested_iteration(dept, emp, 1)
        ni8 = simulate_nested_iteration(dept, emp, 8)
        assert ni8.rows_processed >= ni1.rows_processed

    def test_decorrelated_work_is_constant_in_nodes(self, empdept_rows):
        dept, emp, _ = empdept_rows
        m1 = simulate_decorrelated(dept, emp, 1)
        m8 = simulate_decorrelated(dept, emp, 8)
        assert m8.rows_processed == m1.rows_processed

    def test_sweep(self, empdept_rows):
        dept, emp, _ = empdept_rows
        results = sweep_nodes(dept, emp, node_counts=[1, 2, 4])
        assert len(results) == 3
        for ni, magic in results:
            assert isinstance(ni, ParallelMetrics)
            assert ni.answer == magic.answer

    def test_null_building_department(self):
        # A NULL correlation binding must not crash or change the answer.
        dept = [("d1", 500.0, 1, None), ("d2", 500.0, 0, "B1")]
        emp = [(1, "e1", "B1", 10.0)]
        ni = simulate_nested_iteration(dept, emp, 3)
        magic = simulate_decorrelated(dept, emp, 3)
        # d1: count over NULL building = 0, 1 > 0 -> qualifies.
        assert ni.answer == magic.answer == [("d1",)]


class TestClusterFaults:
    """Node-failure simulation: deterministic retries folded into makespan."""

    SPEC = "1:cluster.node=0.05,cluster.deliver=0.01"

    def _run(self, empdept_rows, spec=None):
        from repro import FaultRegistry

        dept, emp, _ = empdept_rows
        faults = FaultRegistry.parse(spec or self.SPEC)
        return simulate_decorrelated(dept, emp, 4, faults=faults), faults

    def test_answers_survive_node_failures(self, empdept_rows):
        dept, emp, _ = empdept_rows
        clean = simulate_decorrelated(dept, emp, 4)
        faulty, _ = self._run(empdept_rows)
        assert faulty.answer == clean.answer

    def test_failures_are_accounted(self, empdept_rows):
        faulty, faults = self._run(empdept_rows)
        assert faulty.node_failures > 0 or faulty.retries > 0
        assert faulty.retries >= faulty.node_failures
        assert faults.log()  # the registry recorded every fired fault

    def test_backoff_is_folded_into_makespan(self, empdept_rows):
        from repro.parallel.cluster import RETRY_BACKOFF

        faulty, _ = self._run(empdept_rows)
        assert faulty.backoff_time == pytest.approx(
            faulty.retries * RETRY_BACKOFF
        )
        # Backoff lives inside the per-node busy times, hence the makespan.
        assert faulty.makespan == pytest.approx(max(faulty.per_node_busy))
        assert sum(faulty.per_node_busy) >= faulty.backoff_time

    def test_simulation_is_deterministic(self, empdept_rows):
        a, fa = self._run(empdept_rows)
        b, fb = self._run(empdept_rows)
        assert a == b
        assert fa.log() == fb.log()

    def test_no_faults_means_no_failure_accounting(self, empdept_rows):
        dept, emp, _ = empdept_rows
        clean = simulate_decorrelated(dept, emp, 4)
        assert clean.node_failures == 0
        assert clean.retries == 0
        assert clean.backoff_time == 0.0

    def test_ni_under_faults_keeps_answer(self, empdept_rows):
        from repro import FaultRegistry

        dept, emp, _ = empdept_rows
        clean = simulate_nested_iteration(dept, emp, 3)
        faulty = simulate_nested_iteration(
            dept, emp, 3, faults=FaultRegistry.parse(self.SPEC)
        )
        assert faulty.answer == clean.answer

    def test_sweep_with_faults_is_reproducible(self, empdept_rows):
        from repro import FaultRegistry

        dept, emp, _ = empdept_rows

        def sweep():
            faults = FaultRegistry.parse(self.SPEC)
            return sweep_nodes(dept, emp, node_counts=[2, 4], faults=faults)

        assert sweep() == sweep()

    def test_reset_counters_clears_failure_fields(self):
        from repro import FaultRegistry
        from repro.parallel.cluster import RETRY_BACKOFF

        cluster = Cluster(2, faults=FaultRegistry.parse("1:cluster.node=1"))
        cluster.work(0, n_rows=10)
        node = cluster.nodes[0]
        assert node.failures == 1
        assert node.backoff_time == RETRY_BACKOFF
        cluster.reset_counters()
        assert (node.failures, node.retries, node.backoff_time) == (0, 0, 0.0)
