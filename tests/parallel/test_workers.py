"""Real worker-process executor: simulator parity, crash recovery,
process-level fault injection, graceful degradation, and the stale-result
(no-partial-answer) regression."""

import pytest

from repro.errors import (
    BudgetExceeded,
    WorkerPoolError,
    WorkerTaskError,
)
from repro.faults import FaultRegistry
from repro.guard import Limits
from repro.obs.events import EventLog, RingSink, count_by_kind
from repro.parallel import (
    MEASURED_RETRY_POLICY,
    SIMULATED_RETRY_POLICY,
    RetryPolicy,
    WorkerPool,
    local_reference,
    run_real,
    run_real_decorrelated,
    run_real_nested_iteration,
    simulate_decorrelated,
    simulate_nested_iteration,
)
from repro.parallel.cluster import RETRY_BACKOFF
from repro.parallel.workers import Task, _WorkerState
from repro.tpcd import load_empdept

#: Fast-failure pool knobs: recovery paths trigger in tens of
#: milliseconds instead of the production half-second timeouts.
FAST = dict(
    heartbeat_interval=0.02,
    heartbeat_timeout=0.3,
    task_timeout=2.0,
)


@pytest.fixture(scope="module")
def data():
    catalog = load_empdept(n_depts=12, n_emps=60, n_buildings=5, seed=7)
    return list(catalog.table("dept").rows), list(catalog.table("emp").rows)


@pytest.fixture(scope="module")
def reference(data):
    return local_reference(*data)


class TestRetryPolicy:
    def test_simulated_default_is_flat_legacy_backoff(self):
        # The simulator's accounting identity backoff == retries * RETRY_BACKOFF
        # must survive the policy refactor.
        assert SIMULATED_RETRY_POLICY.delay(0) == RETRY_BACKOFF
        assert SIMULATED_RETRY_POLICY.delay(2) == RETRY_BACKOFF

    def test_exponential_growth(self):
        policy = RetryPolicy(base_delay=1.0, multiplier=2.0, jitter=0.0,
                             max_attempts=5)
        assert [policy.delay(a) for a in range(4)] == [1.0, 2.0, 4.0, 8.0]

    def test_jitter_is_deterministic_and_bounded(self):
        policy = RetryPolicy(base_delay=1.0, multiplier=1.0, jitter=0.5,
                             max_attempts=3)
        assert policy.delay(1, seed=9) == policy.delay(1, seed=9)
        assert 1.0 <= policy.delay(1, seed=9) <= 1.5
        assert policy.delay(1, seed=9) != policy.delay(1, seed=10)

    def test_allows_bounds_total_attempts(self):
        policy = RetryPolicy(max_attempts=3)
        assert policy.allows(0) and policy.allows(2)
        assert not policy.allows(3)

    @pytest.mark.parametrize("kwargs", [
        dict(base_delay=-1.0),
        dict(multiplier=0.5),
        dict(jitter=1.5),
        dict(jitter=-0.1),
        dict(max_attempts=0),
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            RetryPolicy(**kwargs)

    def test_measured_default_is_bounded_exponential_with_jitter(self):
        assert MEASURED_RETRY_POLICY.multiplier > 1.0
        assert MEASURED_RETRY_POLICY.jitter > 0.0
        assert not MEASURED_RETRY_POLICY.allows(
            MEASURED_RETRY_POLICY.max_attempts
        )


class TestFaultFreeParity:
    """Fault-free, the measured run must agree with both the fault-free
    single-process reference and the simulator's message accounting."""

    @pytest.mark.parametrize("runner,simulator", [
        (run_real_nested_iteration, simulate_nested_iteration),
        (run_real_decorrelated, simulate_decorrelated),
    ])
    def test_answer_and_messages_match_the_simulator(
        self, data, reference, runner, simulator
    ):
        dept_rows, emp_rows = data
        sim = simulator(dept_rows, emp_rows, 3)
        run = runner(dept_rows, emp_rows, 3, **FAST)
        assert run.answer == reference
        assert sorted(sim.answer) == reference
        assert run.messages == sim.messages
        assert run.fragments == sim.fragments
        assert not run.degraded
        assert run.retries == 0 and run.workers_lost == 0

    def test_rejects_unknown_strategy(self, data):
        with pytest.raises(ValueError, match="unknown strategy"):
            run_real("broadcast", *data, 2)


class TestCrashRecovery:
    def test_sigkill_mid_query_recovers_without_degrading(
        self, data, reference
    ):
        dept_rows, emp_rows = data
        events = EventLog(RingSink(4096))

        run = run_real_decorrelated(
            dept_rows, emp_rows, 3,
            events=events, on_pool=lambda pool: pool.kill_worker(1),
            **FAST,
        )
        assert run.answer == reference
        assert not run.degraded
        assert run.workers_lost == 1
        assert run.retries >= 1
        counts = count_by_kind(events.events())
        assert counts["worker.spawned"] == 3
        assert counts["worker.lost"] == run.workers_lost
        assert counts["worker.retry"] == run.retries

    def test_crash_during_exchange_never_yields_partial_answer(
        self, data, reference
    ):
        # The regression the ledger's epoch tags exist for: a worker dying
        # while exchange/probe tasks are in flight must produce either the
        # full reference answer or a typed error -- never a subset.
        dept_rows, emp_rows = data
        for victim in (0, 1, 2):
            run = run_real_nested_iteration(
                dept_rows, emp_rows, 3,
                on_pool=lambda pool, v=victim: pool.kill_worker(v),
                **FAST,
            )
            assert run.answer == reference, (
                f"killing worker {victim} changed the answer: "
                f"{len(run.answer)} rows vs reference {len(reference)}"
            )

    def test_injected_crashes_recover_or_degrade_correctly(
        self, data, reference
    ):
        dept_rows, emp_rows = data
        run = run_real_decorrelated(
            dept_rows, emp_rows, 3,
            faults=FaultRegistry.parse("3:worker.crash=0.05"),
            **FAST,
        )
        # Whatever the schedule killed, the metamorphic property holds.
        assert run.answer == reference

    def test_exchange_drop_is_recovered_by_task_timeout(
        self, data, reference
    ):
        dept_rows, emp_rows = data
        run = run_real_decorrelated(
            dept_rows, emp_rows, 3,
            faults=FaultRegistry.parse("1:exchange.drop=0.15"),
            heartbeat_interval=0.02, heartbeat_timeout=0.5,
            task_timeout=0.5,
        )
        assert run.answer == reference
        assert run.retries >= 1
        assert run.workers_lost == 0  # dropped sends kill no process


class TestStaleResults:
    """Unit-level: a result from a superseded attempt can never merge."""

    def _pool_with_pending(self):
        pool = WorkerPool(2)
        task = Task("t.0", 0, "sql", ("select 1", "ni"), attempt=2)
        pool._pending["t.0"] = task
        state = _WorkerState(
            worker_id=0, process=None, task_queue=None,
            result_queue=None, last_seen=0.0,
        )
        return pool, task, state

    def test_result_from_old_attempt_is_dropped(self):
        pool, task, state = self._pool_with_pending()
        pool._handle(state, ("result", 0, "t.0", 1, [("stale",)], None, []))
        assert pool.stale_results == 1
        assert not task.done and task.result is None
        assert "t.0" in pool._pending

    def test_result_for_current_attempt_merges(self):
        pool, task, state = self._pool_with_pending()
        pool._handle(state, ("result", 0, "t.0", 2, [("fresh",)], None, []))
        assert pool.stale_results == 0
        assert task.done and task.result == [("fresh",)]
        assert "t.0" not in pool._pending

    def test_error_from_old_attempt_is_dropped(self):
        pool, task, state = self._pool_with_pending()
        pool._handle(state, ("error", 0, "t.0", 1, "ValueError", "late"))
        assert pool.stale_results == 1
        assert not task.done

    def test_error_for_current_attempt_is_typed_and_terminal(self):
        pool, task, state = self._pool_with_pending()
        with pytest.raises(WorkerTaskError) as excinfo:
            pool._handle(state, ("error", 0, "t.0", 2, "ValueError", "boom"))
        assert excinfo.value.task_id == "t.0"

    def test_marking_lost_bumps_epochs_before_any_further_drain(self, data):
        # Integration flavor of the same property: after kill + recovery,
        # any result the dead worker managed to enqueue is counted stale,
        # not merged -- so the stale counter and the correct answer can
        # coexist, while a wrong answer cannot.
        dept_rows, emp_rows = data
        run = run_real_nested_iteration(
            dept_rows, emp_rows, 3,
            on_pool=lambda pool: pool.kill_worker(2),
            **FAST,
        )
        assert run.answer == local_reference(dept_rows, emp_rows)


class TestDegradation:
    def test_dead_pool_degrades_to_local_with_event(self, data, reference):
        dept_rows, emp_rows = data
        events = EventLog(RingSink(4096))
        run = run_real_decorrelated(
            dept_rows, emp_rows, 2,
            faults=FaultRegistry.parse("1:worker.crash=1.0"),
            events=events,
            **FAST,
        )
        assert run.degraded
        assert run.answer == reference
        [event] = run.degradations
        assert event.requested == "real:magic_decorrelated"
        assert event.fallback == "local"
        counts = count_by_kind(events.events())
        assert counts["worker.degraded"] == 1

    def test_degrade_false_raises_typed_worker_error(self, data):
        dept_rows, emp_rows = data
        with pytest.raises((WorkerTaskError, WorkerPoolError)):
            run_real_decorrelated(
                dept_rows, emp_rows, 2,
                faults=FaultRegistry.parse("1:worker.crash=1.0"),
                degrade=False,
                **FAST,
            )

    def test_budget_trips_propagate_even_with_degrade(self, data):
        # Governance is not an infrastructure failure: remote work counts
        # against the coordinator's budget and the trip is never absorbed
        # by the local fallback.
        dept_rows, emp_rows = data
        with pytest.raises(BudgetExceeded):
            run_real_decorrelated(
                dept_rows, emp_rows, 2,
                limits=Limits(max_rows_scanned=5),
                **FAST,
            )


class TestPoolValidation:
    def test_needs_at_least_one_worker(self):
        with pytest.raises(WorkerPoolError):
            WorkerPool(0)

    def test_closed_pool_refuses_restart(self):
        pool = WorkerPool(1, **FAST)
        pool.start()
        pool.close()
        with pytest.raises(WorkerPoolError):
            pool.start()


class TestCrossProcessTracing:
    """The grafting contract: workers run child tracers, the coordinator
    grafts their span trees under the distributing operator, and summing
    exclusive per-span metrics over the grafted tree reproduces the pool
    counters exactly (coordinator-side spans carry no counters, and only
    epoch-accepted results are grafted -- the same rule the counters
    follow)."""

    def _worker_spans(self, tracer):
        (root,) = tracer.roots
        workers = [c for c in root.children if c.kind == "worker"]
        return root, workers

    @pytest.mark.parametrize("runner,strategy", [
        (run_real_nested_iteration, "nested_iteration"),
        (run_real_decorrelated, "magic_decorrelated"),
    ])
    def test_grafted_metrics_reconcile_exactly(
        self, data, reference, runner, strategy
    ):
        from repro.trace import Tracer, trace_round_trips, validate_trace

        dept_rows, emp_rows = data
        tracer = Tracer()
        run = runner(dept_rows, emp_rows, 3, tracer=tracer, **FAST)
        assert run.answer == reference
        root, workers = self._worker_spans(tracer)
        assert root.key == ("parallel", strategy)
        assert root.kind == "operator"
        assert workers, "no worker spans grafted"
        for wspan in workers:
            assert wspan.attrs["pid"]
            assert wspan.attrs["worker_id"] == wspan.key[1]
            for dispatch in wspan.children:
                assert dispatch.kind == "dispatch"
                assert dispatch.attrs["outcome"] == "accepted"
                assert dispatch.children, "accepted dispatch without spans"
        # Exact, not approximate: the attribution invariant across the
        # process boundary.
        assert tracer.metric_totals()["rows_scanned"] == run.rows_processed
        export = tracer.export(sql="parity", strategy=strategy)
        validate_trace(export)
        assert trace_round_trips(export)

    def test_killed_worker_retry_is_a_visible_sibling(
        self, data, reference
    ):
        from repro.trace import Tracer

        dept_rows, emp_rows = data
        tracer = Tracer()
        run = run_real_decorrelated(
            dept_rows, emp_rows, 3, tracer=tracer,
            on_pool=lambda pool: pool.kill_worker(1),
            **FAST,
        )
        assert run.answer == reference
        assert run.workers_lost == 1 and run.retries >= 1
        _, workers = self._worker_spans(tracer)
        dispatches = [d for w in workers for d in w.children]
        retried = [
            d for d in dispatches if d.attrs["outcome"] == "retried"
        ]
        assert len(retried) == run.retries
        assert all(d.attrs.get("reason") for d in retried)
        # A retried dispatch never carries grafted spans (its result, if
        # any arrived, was stale) -- and the re-hosted attempt of the same
        # task is accepted elsewhere in the tree.
        for d in retried:
            assert not d.children
            rehosted = [
                a for a in dispatches
                if a.attrs["task"] == d.attrs["task"]
                and a.attrs["outcome"] == "accepted"
            ]
            assert rehosted, f"task {d.attrs['task']} never re-hosted"
        # Reconciliation survives the kill: stale results merge nothing,
        # grafting grafts nothing stale.
        assert tracer.metric_totals()["rows_scanned"] == run.rows_processed

    def test_untraced_run_never_touches_the_graft_path(
        self, data, reference, monkeypatch
    ):
        def boom(*args, **kwargs):  # pragma: no cover - failure path
            raise AssertionError("graft machinery reached without a tracer")

        monkeypatch.setattr(WorkerPool, "_graft", boom)
        monkeypatch.setattr(WorkerPool, "_graft_dispatch", boom)
        dept_rows, emp_rows = data
        run = run_real_decorrelated(dept_rows, emp_rows, 2, **FAST)
        assert run.answer == reference
