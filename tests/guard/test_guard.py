"""Execution guardrails: budgets, cancellation, zero-overhead default."""

import threading

import pytest

from repro import Database, ExecutionGuard, FaultRegistry, Limits, Strategy
from repro.errors import BudgetExceeded, GuardrailError, QueryCancelled
from repro.exec import Metrics
from repro.guard import guard_for
from repro.tpcd import EMP_DEPT_QUERY


@pytest.fixture
def db(empdept_catalog) -> Database:
    return Database(empdept_catalog)


class TestLimits:
    def test_any_set(self):
        assert not Limits().any_set()
        assert Limits(timeout=1.0).any_set()
        assert Limits(max_rows_scanned=10).any_set()

    def test_guard_for_none_is_none(self):
        assert guard_for(None) is None
        assert isinstance(guard_for(Limits()), ExecutionGuard)


class TestBudgets:
    def test_rows_scanned_budget_trips(self, db):
        with pytest.raises(BudgetExceeded) as info:
            db.execute(EMP_DEPT_QUERY, limits=Limits(max_rows_scanned=3))
        error = info.value
        assert error.budget == "max_rows_scanned"
        assert error.limit == 3
        assert error.observed > 3
        # The metrics snapshot at trip time is attached and consistent.
        assert error.metrics is not None
        assert error.metrics.rows_scanned == error.observed

    def test_trip_is_within_one_step_of_the_limit(self, db):
        # The check runs at step granularity: the observed overshoot is at
        # most one step's worth of rows (here: one full table scan).
        biggest_table = max(
            len(t) for t in (db.catalog.table("dept"), db.catalog.table("emp"))
        )
        with pytest.raises(BudgetExceeded) as info:
            db.execute(EMP_DEPT_QUERY, limits=Limits(max_rows_scanned=1))
        assert info.value.observed <= 1 + biggest_table

    def test_subquery_invocation_budget_trips(self, db):
        with pytest.raises(BudgetExceeded) as info:
            db.execute(
                EMP_DEPT_QUERY,
                strategy=Strategy.NESTED_ITERATION,
                limits=Limits(max_subquery_invocations=2),
            )
        assert info.value.budget == "max_subquery_invocations"

    def test_decorrelated_strategies_do_not_invoke_subqueries(self, db):
        # The same budget that kills NI passes for the decorrelated plan --
        # the paper's whole point, now enforceable as a guardrail.
        result = db.execute(
            EMP_DEPT_QUERY,
            strategy=Strategy.MAGIC,
            limits=Limits(max_subquery_invocations=2),
        )
        assert sorted(result.rows) == sorted(
            db.execute(EMP_DEPT_QUERY).rows
        )

    def test_rows_materialized_budget_trips(self, db):
        with pytest.raises(BudgetExceeded) as info:
            db.execute(
                EMP_DEPT_QUERY,
                strategy=Strategy.MAGIC,
                cse_mode="materialize",
                limits=Limits(max_rows_materialized=0),
            )
        assert info.value.budget == "max_rows_materialized"

    def test_timeout_budget_trips(self, db):
        clock_value = [0.0]

        def clock() -> float:
            clock_value[0] += 10.0
            return clock_value[0]

        guard = ExecutionGuard(Limits(timeout=5.0), clock=clock)
        with pytest.raises(BudgetExceeded) as info:
            db.execute(EMP_DEPT_QUERY, guard=guard)
        assert info.value.budget == "timeout"
        assert guard.tripped is info.value

    def test_generous_budgets_do_not_trip(self, db):
        result = db.execute(
            EMP_DEPT_QUERY,
            limits=Limits(
                timeout=3600.0,
                max_rows_scanned=10**9,
                max_rows_materialized=10**9,
                max_subquery_invocations=10**9,
            ),
        )
        assert sorted(result.rows) == [("d_low",), ("research",), ("sales",)]

    def test_budget_error_is_typed(self, db):
        with pytest.raises(GuardrailError):
            db.execute(EMP_DEPT_QUERY, limits=Limits(max_rows_scanned=0))


class TestCancellation:
    def test_pre_cancelled_guard_stops_immediately(self, db):
        guard = ExecutionGuard(Limits())
        guard.cancel()
        with pytest.raises(QueryCancelled) as info:
            db.execute(EMP_DEPT_QUERY, guard=guard)
        assert guard.cancelled
        assert info.value.metrics is not None

    def test_cancel_from_another_thread(self, empdept_catalog):
        # A cooperative cancel lands within one executor step: use a clock
        # hook-free approach -- cancel after the first check observed.
        db = Database(empdept_catalog)
        guard = ExecutionGuard(Limits())
        started = threading.Event()

        original_check = guard.check

        def checking():
            started.set()
            original_check()

        guard.check = checking  # type: ignore[method-assign]
        canceller = threading.Thread(
            target=lambda: (started.wait(5), guard.cancel())
        )
        canceller.start()
        try:
            # Big enough NI workload that cancellation lands mid-flight on
            # any machine; raises QueryCancelled once observed.
            with pytest.raises(QueryCancelled):
                for _ in range(1000):
                    db.execute(EMP_DEPT_QUERY, guard=guard)
        finally:
            canceller.join()


class TestZeroOverheadDefault:
    def test_no_limits_identical_metrics(self, db):
        plain = db.execute(EMP_DEPT_QUERY, strategy=Strategy.MAGIC)
        limited = db.execute(
            EMP_DEPT_QUERY, strategy=Strategy.MAGIC, limits=Limits()
        )
        assert plain.metrics.as_dict() == limited.metrics.as_dict()
        assert plain.rows == limited.rows

    def test_metrics_snapshot_is_a_copy(self, db):
        with pytest.raises(BudgetExceeded) as info:
            db.execute(EMP_DEPT_QUERY, limits=Limits(max_rows_scanned=1))
        snapshot = info.value.metrics
        assert snapshot is not None
        assert isinstance(snapshot, Metrics)
        before = snapshot.rows_scanned
        snapshot.rows_scanned += 123
        with pytest.raises(BudgetExceeded) as second:
            db.execute(EMP_DEPT_QUERY, limits=Limits(max_rows_scanned=1))
        assert second.value.metrics.rows_scanned == before


class _ScanGate(FaultRegistry):
    """Blocks the executing thread inside its first table scan until
    released -- a deterministic window for cross-thread cancellation."""

    def __init__(self):
        super().__init__(0, ())
        self.started = threading.Event()
        self.release = threading.Event()

    def trigger(self, site: str, detail: str = "") -> None:
        if site == "storage.scan":
            self.started.set()
            assert self.release.wait(30), "gate never released"


class TestCrossThreadCancellationPerStrategy:
    """Satellite: a ``cancel()`` issued from a second thread mid-scan must
    surface as ``QueryCancelled`` (with a metrics snapshot) within one
    executor step, for every rewrite strategy."""

    @pytest.mark.parametrize(
        "strategy", ["ni", "kim", "dayal", "magic", "magic_opt"]
    )
    def test_cancel_mid_scan(self, empdept_catalog, strategy):
        gate = _ScanGate()
        db = Database(empdept_catalog, faults=gate)
        guard = ExecutionGuard(Limits())
        outcome: list = []

        def run() -> None:
            try:
                db.execute(EMP_DEPT_QUERY, strategy=strategy, guard=guard)
                outcome.append(None)
            except BaseException as exc:  # noqa: BLE001 - asserted below
                outcome.append(exc)

        worker = threading.Thread(target=run)
        worker.start()
        try:
            assert gate.started.wait(30)  # wedged inside the first scan
            guard.cancel()                # ... from this (second) thread
        finally:
            gate.release.set()
            worker.join(30)
        assert not worker.is_alive(), f"{strategy}: query wedged"
        assert len(outcome) == 1
        error = outcome[0]
        assert isinstance(error, QueryCancelled), error
        assert error.metrics is not None
        assert guard.tripped is error
