"""Guard/fault suite fixtures.

These tests pin their own fault registries (or none); an ambient
``REPRO_FAULTS`` -- e.g. the CI fault-injection matrix -- must not leak
into them. Tests that exercise env pickup set the variable explicitly.
"""

import pytest


@pytest.fixture(autouse=True)
def _no_ambient_faults(monkeypatch):
    monkeypatch.delenv("REPRO_FAULTS", raising=False)
