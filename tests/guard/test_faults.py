"""Deterministic fault injection: spec parsing, determinism, sites."""

import pytest

from repro import Database, FaultRegistry, Strategy
from repro.errors import FaultInjectedError
from repro.faults import FAULT_SITES, FaultRule, InjectedFault
from repro.tpcd import EMP_DEPT_QUERY


class TestSpecParsing:
    def test_parse_full_spec(self):
        registry = FaultRegistry.parse("42:exec.join=0.01,rewrite.strategy=1")
        assert registry.seed == 42
        assert registry.rules == (
            FaultRule("exec.join", 0.01),
            FaultRule("rewrite.strategy", 1.0),
        )

    def test_bare_site_means_rate_one(self):
        registry = FaultRegistry.parse("7:storage.scan")
        assert registry.rules == (FaultRule("storage.scan", 1.0),)

    def test_prefix_glob(self):
        registry = FaultRegistry.parse("7:storage.*=0.5")
        assert registry.rules[0].matches("storage.scan")
        assert registry.rules[0].matches("storage.index_lookup")
        assert not registry.rules[0].matches("exec.join")

    @pytest.mark.parametrize(
        "spec",
        ["", "noseed", "x:storage.scan=1", "1:bogus.site=1",
         "1:storage.scan=lots", "1:=1", "-1:storage.scan=1",
         "1:storage.scan=2"],
    )
    def test_bad_specs_rejected(self, spec):
        with pytest.raises(ValueError):
            FaultRegistry.parse(spec)

    def test_from_env(self):
        assert FaultRegistry.from_env({}) is None
        assert FaultRegistry.from_env({"REPRO_FAULTS": ""}) is None
        registry = FaultRegistry.from_env({"REPRO_FAULTS": "3:exec.join=0.5"})
        assert registry is not None and registry.seed == 3

    def test_all_named_sites_are_parseable(self):
        spec = "1:" + ",".join(f"{site}=0.1" for site in FAULT_SITES)
        assert len(FaultRegistry.parse(spec).rules) == len(FAULT_SITES)


class TestDeterminism:
    def test_same_seed_same_decisions(self):
        a = FaultRegistry.parse("11:exec.join=0.3")
        b = FaultRegistry.parse("11:exec.join=0.3")
        decisions_a = [a.should_fire("exec.join") for _ in range(200)]
        decisions_b = [b.should_fire("exec.join") for _ in range(200)]
        assert decisions_a == decisions_b
        assert a.log() == b.log()
        assert any(decisions_a) and not all(decisions_a)

    def test_different_seeds_differ(self):
        a = FaultRegistry.parse("1:exec.join=0.3")
        b = FaultRegistry.parse("2:exec.join=0.3")
        assert [a.should_fire("exec.join") for _ in range(200)] != [
            b.should_fire("exec.join") for _ in range(200)
        ]

    def test_replica_replays(self):
        registry = FaultRegistry.parse("5:storage.*=0.2")
        [registry.should_fire("storage.scan") for _ in range(50)]
        replica = registry.replica()
        assert replica.seed == registry.seed
        assert replica.rules == registry.rules
        assert replica.injected == []
        replayed = [replica.should_fire("storage.scan") for _ in range(50)]
        assert replica.log() == registry.log()
        assert any(replayed)

    def test_rate_zero_never_fires(self):
        registry = FaultRegistry.parse("5:exec.join=0")
        assert not any(registry.should_fire("exec.join") for _ in range(100))
        assert registry.log() == []

    def test_rate_one_always_fires(self):
        registry = FaultRegistry.parse("5:exec.join=1")
        assert all(registry.should_fire("exec.join") for _ in range(100))

    def test_unmatched_site_never_fires(self):
        registry = FaultRegistry.parse("5:exec.join=1")
        assert not registry.should_fire("storage.scan")


class TestTrigger:
    def test_trigger_raises_with_site_and_sequence(self):
        registry = FaultRegistry.parse("5:storage.scan=1")
        with pytest.raises(FaultInjectedError) as info:
            registry.trigger("storage.scan", detail="dept")
        assert info.value.site == "storage.scan"
        assert info.value.sequence == 0
        assert info.value.detail == "dept"
        assert registry.injected == [InjectedFault("storage.scan", 0, "dept")]

    def test_trigger_passes_when_not_fired(self):
        registry = FaultRegistry.parse("5:exec.join=0")
        registry.trigger("exec.join")  # no raise


class TestEngineIntegration:
    def test_scan_fault_surfaces_as_typed_error(self, empdept_catalog):
        db = Database(empdept_catalog, faults=FaultRegistry.parse("1:storage.scan=1"))
        with pytest.raises(FaultInjectedError) as info:
            db.execute(EMP_DEPT_QUERY)
        assert info.value.site == "storage.scan"

    def test_engine_run_is_reproducible(self, empdept_catalog):
        spec = "9:storage.scan=0.2,exec.join=0.1,exec.group=0.3"

        def outcome():
            db = Database(empdept_catalog, faults=FaultRegistry.parse(spec))
            try:
                result = db.execute(EMP_DEPT_QUERY, strategy=Strategy.MAGIC)
                return ("ok", sorted(result.rows), db.faults.log())
            except FaultInjectedError as exc:
                return ("fault", (exc.site, exc.sequence), db.faults.log())

        assert outcome() == outcome()

    def test_no_faults_by_default(self, empdept_catalog, monkeypatch):
        monkeypatch.delenv("REPRO_FAULTS", raising=False)
        db = Database(empdept_catalog)
        assert db.faults is None
        assert db.engine.faults is None

    def test_env_spec_is_picked_up(self, empdept_catalog, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "4:rewrite.strategy=1")
        db = Database(empdept_catalog)
        assert db.faults is not None
        with pytest.raises(FaultInjectedError):
            db.execute(EMP_DEPT_QUERY, strategy=Strategy.MAGIC)


class TestConcurrentDeterminism:
    """The registry keeps ONE global per-site ordinal schedule: concurrent
    callers each claim a distinct ordinal atomically, so the *set* of fired
    ordinals matches a single-threaded run of the same schedule exactly
    (which ordinal lands in which thread is the only nondeterminism)."""

    def test_concurrent_draws_consume_one_global_schedule(self):
        import threading

        spec = "9:exec.join=0.25"
        reference = FaultRegistry.parse(spec)
        expected_fired = [
            n for n in range(800) if reference.should_fire("exec.join")
        ]

        registry = FaultRegistry.parse(spec)
        barrier = threading.Barrier(8)

        def work() -> None:
            barrier.wait()
            for _ in range(100):
                registry.should_fire("exec.join")

        threads = [threading.Thread(target=work) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(30)
            assert not t.is_alive()

        # Exactly 800 ordinals were claimed -- none lost, none duplicated --
        # and the fired set is the single-threaded schedule.
        fired = sorted(seq for _, seq, _ in registry.log())
        assert fired == expected_fired
        assert len(set(fired)) == len(fired)

    def test_replica_gives_each_thread_a_private_schedule(self):
        import threading

        base = FaultRegistry.parse("9:exec.join=0.25")
        single = base.replica()
        reference = [
            n for n in range(100) if single.should_fire("exec.join")
        ]
        results: list = [None] * 4

        def work(i: int) -> None:
            replica = base.replica()
            results[i] = [
                n for n in range(100) if replica.should_fire("exec.join")
            ]

        threads = [
            threading.Thread(target=work, args=(i,)) for i in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(30)

        # Every replica replays the same schedule from zero, and none of
        # them advanced the base registry's counters.
        assert all(r == reference for r in results)
        assert base.log() == []
