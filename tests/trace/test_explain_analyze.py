"""EXPLAIN ANALYZE: annotated plans for the paper's queries under every
strategy, and the attribution invariant's reconciliation footer."""

import pytest

from repro import Database, Strategy
from repro.errors import NotApplicableError
from repro.tpcd import QUERY_1, QUERY_2, QUERY_3, load_tpcd
from repro.trace import Tracer

STRATEGIES = (
    Strategy.NESTED_ITERATION, Strategy.KIM, Strategy.DAYAL, Strategy.MAGIC,
)
QUERIES = {"q1": QUERY_1, "q2": QUERY_2, "q3": QUERY_3}

#: (query, strategy) pairs the paper itself declares inapplicable
#: ("Neither Kim's nor Dayal's methods can be applied" to Query 3).
INAPPLICABLE = {("q3", Strategy.KIM), ("q3", Strategy.DAYAL)}


@pytest.fixture(scope="module")
def tpcd_db() -> Database:
    return Database(load_tpcd(scale_factor=0.002))


@pytest.mark.parametrize("strategy", STRATEGIES, ids=lambda s: s.value)
@pytest.mark.parametrize("name", sorted(QUERIES))
def test_analyze_annotates_every_paper_query(tpcd_db, name, strategy):
    if (name, strategy) in INAPPLICABLE:
        with pytest.raises(NotApplicableError):
            tpcd_db.explain(QUERIES[name], strategy, analyze=True)
        return
    text = tpcd_db.explain(QUERIES[name], strategy, analyze=True)
    # Per-operator actuals on the plan ...
    assert "(actual: calls=" in text
    assert "rows_out=" in text
    assert "time=" in text
    # ... the rewrite timeline and breakdown table ...
    assert "Rewrite timeline:" in text
    assert "Per-operator breakdown:" in text
    # ... and the attribution invariant holding exactly.
    assert "reconcile exactly" in text
    assert "DIVERGE" not in text


def test_plain_explain_carries_no_annotations(tpcd_db):
    text = tpcd_db.explain(QUERY_2, Strategy.MAGIC)
    assert "(actual:" not in text
    assert "Rewrite timeline:" not in text


def test_unexecuted_branches_are_marked(tpcd_db):
    # Under nested iteration the subquery boxes execute via expression
    # context, so some plan nodes legitimately never run as steps.
    text = tpcd_db.explain(QUERY_1, Strategy.NESTED_ITERATION, analyze=True)
    assert "(never executed)" in text


def test_caller_supplied_tracer_is_inspectable(tpcd_db):
    tracer = Tracer()
    tpcd_db.explain(QUERY_2, Strategy.MAGIC, analyze=True, tracer=tracer)
    kinds = {span.kind for span in tracer.roots}
    assert kinds == {"rewrite", "query"}
    # The rewrite span carries one child per engine step.
    rewrite = next(s for s in tracer.roots if s.kind == "rewrite")
    assert rewrite.attrs["steps"] == len(rewrite.children)
    assert all(c.kind == "rewrite-step" for c in rewrite.children)


def test_footer_reports_rows_and_peak(tpcd_db):
    text = tpcd_db.explain(QUERY_2, Strategy.MAGIC, analyze=True)
    assert "Execution:" in text
    assert "peak live materialisation" in text
