"""The versioned trace JSON schema: export, validation, round-trip."""

import json

import pytest

from repro import Database, Strategy
from repro.errors import TraceError
from repro.trace import (
    TRACE_VERSION,
    Tracer,
    spans_from_dict,
    trace_round_trips,
    validate_trace,
)

QUERY = (
    "SELECT name FROM dept D WHERE D.budget < 10000 AND D.num_emps > "
    "(SELECT count(*) FROM emp E WHERE E.building = D.building)"
)


@pytest.fixture
def payload(empdept_catalog) -> dict:
    """A real exported trace: rewrite + execution of the section-2 query."""
    db = Database(empdept_catalog)
    tracer = Tracer()
    db.execute(QUERY, strategy=Strategy.MAGIC, tracer=tracer)
    return tracer.export(sql=QUERY, strategy="magic")


class TestExport:
    def test_payload_shape(self, payload):
        assert payload["version"] == TRACE_VERSION
        assert payload["sql"] == QUERY
        assert payload["strategy"] == "magic"
        kinds = {span["kind"] for span in payload["spans"]}
        assert kinds == {"rewrite", "query"}

    def test_export_is_json_serialisable(self, payload):
        text = json.dumps(payload, indent=2, sort_keys=True)
        assert json.loads(text) == payload

    def test_extra_attrs_are_passed_through(self):
        payload = Tracer().export(run_id=42)
        assert payload["run_id"] == 42


class TestValidation:
    def test_real_export_validates(self, payload):
        validate_trace(payload)  # does not raise

    def test_round_trip_is_byte_identical(self, payload):
        assert trace_round_trips(payload)

    def test_spans_rebuild_losslessly(self, payload):
        spans = spans_from_dict(payload)
        assert [s.as_dict() for s in spans] == payload["spans"]

    def test_non_object_rejected(self):
        with pytest.raises(TraceError):
            validate_trace([1, 2, 3])

    def test_wrong_version_rejected(self, payload):
        payload["version"] = TRACE_VERSION + 1
        with pytest.raises(TraceError, match="version"):
            validate_trace(payload)

    def test_unknown_kind_rejected(self, payload):
        payload["spans"][0]["kind"] = "mystery"
        with pytest.raises(TraceError, match="unknown kind"):
            validate_trace(payload)

    def test_negative_counter_rejected(self, payload):
        payload["spans"][0]["calls"] = -1
        with pytest.raises(TraceError, match="calls"):
            validate_trace(payload)

    def test_unknown_metric_counter_rejected(self, payload):
        payload["spans"][0]["metrics"]["rows_imagined"] = 7
        with pytest.raises(TraceError, match="rows_imagined"):
            validate_trace(payload)

    def test_missing_field_names_the_path(self, payload):
        del payload["spans"][0]["children"][0]["elapsed_s"]
        with pytest.raises(TraceError, match=r"spans\[0\].children\[0\]"):
            validate_trace(payload)

    def test_every_problem_is_reported(self, payload):
        payload["strategy"] = 5
        payload["spans"][0]["kind"] = "mystery"
        with pytest.raises(TraceError) as info:
            validate_trace(payload)
        message = str(info.value)
        assert "strategy" in message and "mystery" in message
