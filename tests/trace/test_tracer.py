"""Unit tests for the span collector: aggregation, exclusive deltas,
cache hits, the injectable clock, and cross-trace merging."""

import pytest

from repro.exec import Metrics
from repro.exec.metrics import SUM_FIELD_NAMES
from repro.trace import Tracer, merge_operator_summaries
from repro.trace.tracer import _generic_operator_name


class FakeClock:
    """A manually advanced monotonic clock."""

    def __init__(self, start: float = 100.0):
        self.now = start

    def advance(self, seconds: float) -> None:
        self.now += seconds

    def __call__(self) -> float:
        return self.now


@pytest.fixture
def clock() -> FakeClock:
    return FakeClock()


@pytest.fixture
def tracer(clock) -> Tracer:
    tracer = Tracer(clock=clock)
    tracer.attach(Metrics())
    return tracer


class TestAggregation:
    def test_same_key_same_parent_is_one_span(self, tracer):
        for _ in range(3954):
            frame = tracer.begin(("box", 7), "subquery", "operator")
            tracer.end(frame, rows_out=1)
        assert len(tracer.roots) == 1
        span = tracer.roots[0]
        assert span.calls == 3954
        assert span.rows_out == 3954
        assert not span.children

    def test_same_key_different_parents_is_two_nodes(self, tracer):
        for parent_key in (("box", 1), ("box", 2)):
            outer = tracer.begin(parent_key, "outer", "operator")
            inner = tracer.begin(("box", 9), "shared", "operator")
            tracer.end(inner)
            tracer.end(outer)
        assert len(tracer.roots) == 2
        assert all(len(r.children) == 1 for r in tracer.roots)
        # ... but operator_stats merges every tree position of one key.
        stats = tracer.operator_stats()
        assert stats[("box", 9)].calls == 2

    def test_elapsed_is_inclusive(self, tracer, clock):
        outer = tracer.begin(("box", 1), "outer", "operator")
        clock.advance(1.0)
        inner = tracer.begin(("box", 2), "inner", "operator")
        clock.advance(2.0)
        tracer.end(inner)
        clock.advance(0.5)
        tracer.end(outer)
        spans = {s.key: s for s in tracer.roots}
        parent = spans[("box", 1)]
        assert parent.elapsed == pytest.approx(3.5)  # includes the child
        assert parent.children[0].elapsed == pytest.approx(2.0)

    def test_rows_in_and_out_accumulate(self, tracer):
        frame = tracer.begin(("step", 1, 0), "hash join", "step", rows_in=10)
        tracer.end(frame, rows_out=4)
        frame = tracer.begin(("step", 1, 0), "hash join", "step", rows_in=6)
        tracer.end(frame, rows_out=2)
        span = tracer.roots[0]
        assert (span.rows_in, span.rows_out) == (16, 6)


class TestExclusiveDeltas:
    def test_parent_delta_excludes_child_work(self, tracer):
        metrics = tracer._metrics
        outer = tracer.begin(("box", 1), "outer", "operator")
        metrics.rows_scanned += 5
        inner = tracer.begin(("box", 2), "inner", "operator")
        metrics.rows_scanned += 7
        metrics.rows_joined += 3
        tracer.end(inner)
        metrics.rows_scanned += 1
        tracer.end(outer)
        spans = {s.key: s for s in tracer.roots}
        parent = spans[("box", 1)]
        child = parent.children[0]
        assert child.metrics["rows_scanned"] == 7
        assert child.metrics["rows_joined"] == 3
        assert parent.metrics["rows_scanned"] == 6  # 5 before + 1 after
        assert parent.metrics["rows_joined"] == 0

    def test_metric_totals_reproduce_the_metrics_object(self, tracer):
        metrics = tracer._metrics
        outer = tracer.begin(("box", 1), "outer", "operator")
        metrics.rows_scanned += 5
        inner = tracer.begin(("box", 2), "inner", "operator")
        metrics.rows_grouped += 9
        tracer.end(inner)
        tracer.end(outer)
        totals = tracer.metric_totals()
        assert totals == {
            name: getattr(metrics, name) for name in SUM_FIELD_NAMES
        }

    def test_grandchild_work_not_double_claimed(self, tracer):
        metrics = tracer._metrics
        a = tracer.begin(("box", 1), "a", "operator")
        b = tracer.begin(("box", 2), "b", "operator")
        c = tracer.begin(("box", 3), "c", "operator")
        metrics.rows_scanned += 11
        tracer.end(c)
        tracer.end(b)
        tracer.end(a)
        totals = tracer.metric_totals()
        assert totals["rows_scanned"] == 11

    def test_unattached_tracer_collects_timing_only(self, clock):
        tracer = Tracer(clock=clock)  # no attach(): snapshots are None
        frame = tracer.begin(("box", 1), "scan", "operator")
        clock.advance(1.0)
        tracer.end(frame, rows_out=3)
        span = tracer.roots[0]
        assert span.elapsed == pytest.approx(1.0)
        assert all(v == 0 for v in span.metrics.values())


class TestCacheHitsAndRecord:
    def test_cache_hit_counts_without_a_call(self, tracer):
        frame = tracer.begin(("box", 4), "cse", "operator")
        tracer.end(frame, rows_out=10)
        tracer.cache_hit(("box", 4), "cse", "operator")
        tracer.cache_hit(("box", 4), "cse", "operator")
        span = tracer.roots[0]
        assert span.calls == 1
        assert span.cache_hits == 2

    def test_record_appends_premeasured_span(self, tracer, clock):
        outer = tracer.begin(("rewrite", "magic"), "rewrite", "rewrite")
        mark = tracer.now()
        clock.advance(0.25)
        tracer.record(
            ("rewrite-step", 0), "feed magic", "rewrite-step",
            elapsed=tracer.now() - mark, attrs={"boxes_created": [10]},
        )
        tracer.end(outer)
        root = tracer.roots[0]
        assert root.children[0].elapsed == pytest.approx(0.25)
        assert root.children[0].attrs == {"boxes_created": [10]}

    def test_now_uses_the_injected_clock(self, tracer, clock):
        before = tracer.now()
        clock.advance(5.0)
        assert tracer.now() - before == pytest.approx(5.0)


class TestSummaries:
    def _one_span(self, tracer, key, name, seconds, clock):
        frame = tracer.begin(key, name, "operator")
        clock.advance(seconds)
        tracer.end(frame, rows_out=1)

    def test_summaries_sorted_by_elapsed_and_filtered(self, tracer, clock):
        rewrite = tracer.begin(("rewrite", "magic"), "rewrite", "rewrite")
        tracer.end(rewrite)
        self._one_span(tracer, ("box", 1), "fast", 0.1, clock)
        self._one_span(tracer, ("box", 2), "slow", 0.9, clock)
        rows = tracer.operator_summaries()
        assert [r["name"] for r in rows] == ["slow", "fast"]
        assert all(r["kind"] in ("operator", "step") for r in rows)
        assert tracer.operator_summaries(top=1)[0]["name"] == "slow"

    def test_summary_metrics_omit_zero_counters(self, tracer):
        metrics = tracer._metrics
        frame = tracer.begin(("box", 1), "scan t", "operator")
        metrics.rows_scanned += 4
        tracer.end(frame)
        (row,) = tracer.operator_summaries()
        assert row["metrics"] == {"rows_scanned": 4}


class TestMerging:
    def test_generic_name_strips_per_query_identifiers(self):
        assert _generic_operator_name("groupby [719]") == "groupby"
        assert _generic_operator_name("scan h1168") == "scan h"
        assert _generic_operator_name("magic supplement (box 12)") == (
            "magic supplement (box)"
        )
        assert _generic_operator_name("hash join") == "hash join"

    def test_merge_coalesces_across_queries(self):
        op = {
            "key": ["box", 1], "kind": "operator", "calls": 1,
            "rows_in": 0, "rows_out": 5, "elapsed_ms": 2.0,
            "cache_hits": 0, "metrics": {"rows_scanned": 5},
        }
        traces = [
            {"operators": [dict(op, name="groupby [719]")]},
            {"operators": [dict(op, name="groupby [1187]", elapsed_ms=3.0)]},
            {"operators": [dict(op, name="scan h42")]},
        ]
        merged = merge_operator_summaries(traces)
        by_name = {e["name"]: e for e in merged}
        assert set(by_name) == {"groupby", "scan h"}
        assert by_name["groupby"]["calls"] == 2
        assert by_name["groupby"]["elapsed_ms"] == pytest.approx(5.0)
        assert by_name["groupby"]["metrics"] == {"rows_scanned": 10}
        # Largest total elapsed first; ``top`` truncates.
        assert merged[0]["name"] == "groupby"
        assert len(merge_operator_summaries(traces, top=1)) == 1

    def test_merge_of_traceless_summaries_is_empty(self):
        assert merge_operator_summaries([{"query_id": 1}]) == []
