"""Mutation self-tests: corrupt plans, graphs and lock code on purpose and
assert each analyzer fires with the *right* code.

A verifier that never fires is indistinguishable from one that always
passes; every diagnostic code gets at least one seeded defect here, plus
an assertion that the pristine artifact was clean before the mutation
(so each test demonstrates detection, not noise)."""

import pytest

from repro.analyze.conc import lint_source
from repro.analyze.diagnostics import Severity
from repro.analyze.plans import (
    check_interfaces,
    interface_diagnostics,
    verify_query_plan,
    verify_select_plan,
)
from repro.api.strategies import Strategy
from repro.plan.planner import (
    HashJoinStep,
    IndexLookupStep,
    PredicateStep,
    ScanStep,
    plan_select_box,
)
from repro.qgm import build_qgm
from repro.qgm.analysis import iter_boxes
from repro.qgm.expr import ColumnRef
from repro.qgm.model import SelectBox
from repro.rewrite import RewriteEngine
from repro.sql.parser import parse_statement
from repro.storage import Catalog, Column, Schema
from repro.types import SQLType

CORRELATED_COUNT = (
    "SELECT d.name FROM dept d WHERE d.num_emps > "
    "(SELECT count(*) FROM emp e WHERE e.building = d.building)"
)
INDEX_JOIN = (
    "SELECT d.name, e.name FROM dept d, emp e "
    "WHERE d.building = e.building"
)
HASH_JOIN = "SELECT d.name FROM dept d, emp e WHERE d.budget = e.salary"


@pytest.fixture
def catalog() -> Catalog:
    cat = Catalog()
    dept = cat.create_table(
        "dept",
        Schema(
            [
                Column("name", SQLType.STR, nullable=False),
                Column("budget", SQLType.FLOAT),
                Column("num_emps", SQLType.INT),
                Column("building", SQLType.STR),
            ],
            primary_key=["name"],
        ),
    )
    emp = cat.create_table(
        "emp",
        Schema(
            [
                Column("empno", SQLType.INT, nullable=False),
                Column("name", SQLType.STR),
                Column("building", SQLType.STR),
                Column("salary", SQLType.FLOAT),
            ],
            primary_key=["empno"],
        ),
    )
    for i in range(50):
        emp.insert((i, f"e{i}", f"B{i % 5}", 100.0 + i))
    for i in range(10):
        dept.insert((f"d{i}", 100.0 + i, i, f"B{i % 5}"))
    emp.create_index("emp_building", ["building"])
    return cat


def _root_plan(catalog, sql):
    graph = build_qgm(parse_statement(sql), catalog)
    return graph, plan_select_box(catalog, graph.root)


def _codes(diags):
    return {d.code for d in diags}


def _assert_fires(catalog, plan, code):
    diags = verify_select_plan(catalog, plan)
    assert code in _codes(diags), (
        f"expected {code}, got {sorted(_codes(diags))}"
    )


def _assert_clean(catalog, plan):
    diags = verify_select_plan(catalog, plan)
    errors = [d for d in diags if d.severity is Severity.ERROR]
    assert not errors, [str(d) for d in errors]


# -- plan mutations (PLN001-PLN004, PLN008-PLN010) -----------------------------


def test_pln001_dangling_column_reference(catalog):
    graph, plan = _root_plan(catalog, INDEX_JOIN)
    _assert_clean(catalog, plan)
    predicate = next(
        s for s in plan.steps if isinstance(s, PredicateStep)
    )
    ref = next(
        n for n in [predicate.predicate] + list(predicate.predicate.children())
        if isinstance(n, ColumnRef)
    )
    object.__setattr__(ref, "column", "ghost_column")
    _assert_fires(catalog, plan, "PLN001")


def test_pln002_predicate_before_access_step(catalog):
    graph, plan = _root_plan(catalog, INDEX_JOIN)
    _assert_clean(catalog, plan)
    predicate = next(
        s for s in plan.steps if isinstance(s, PredicateStep)
    )
    plan.steps.remove(predicate)
    plan.steps.insert(0, predicate)  # reads quantifiers before they bind
    _assert_fires(catalog, plan, "PLN002")


def test_pln002_subquery_eval_before_correlation_binds(catalog):
    graph, plan = _root_plan(catalog, CORRELATED_COUNT)
    _assert_clean(catalog, plan)
    # Move the scalar-subquery evaluation ahead of the scan that binds
    # its correlation quantifier.
    eval_step = plan.steps.pop(1)
    plan.steps.insert(0, eval_step)
    _assert_fires(catalog, plan, "PLN002")


def test_pln003_wrong_index_name(catalog):
    graph, plan = _root_plan(catalog, INDEX_JOIN)
    lookup = next(
        s for s in plan.steps if isinstance(s, IndexLookupStep)
    )
    lookup.index_name = "no_such_index"
    _assert_fires(catalog, plan, "PLN003")


def test_pln003_keys_matching_no_index(catalog):
    graph, plan = _root_plan(catalog, INDEX_JOIN)
    lookup = next(
        s for s in plan.steps if isinstance(s, IndexLookupStep)
    )
    lookup.key_columns = ("salary",)
    _assert_fires(catalog, plan, "PLN003")


def test_pln004_scan_falsely_marked_correlated(catalog):
    graph, plan = _root_plan(catalog, INDEX_JOIN)
    scan = next(s for s in plan.steps if isinstance(s, ScanStep))
    scan.correlated_to_self = True
    _assert_fires(catalog, plan, "PLN004")


def test_pln004_correlated_scan_unmarked(catalog):
    graph = build_qgm(parse_statement(CORRELATED_COUNT), catalog)
    # The subquery's emp access is correlated to the *outer* box, not to
    # its own; build a self-correlated shape instead: plan the outer box
    # of a query whose FROM ranges over a derived table referencing a
    # sibling -- simplest seeded form: take the clean plan of the outer
    # box and falsely clear a marking the planner set. The NI plan of the
    # outer box has no correlated scan, so mutate the *verifier's* input:
    # claim the subquery scan is uncorrelated by planning the inner box
    # and flipping.
    inner = next(
        b for b in iter_boxes(graph.root)
        if isinstance(b, SelectBox) and b is not graph.root
    )
    plan = plan_select_box(catalog, inner)
    _assert_clean(catalog, plan)
    # The inner box's index lookup binds e; degrade it to a scan wrongly
    # marked uncorrelated *after* making its subtree self-referential:
    # flipping correlated_to_self on a scan whose subtree the verifier
    # recomputes is exactly the disagreement PLN004 encodes.
    steps = [s for s in plan.steps if isinstance(s, (ScanStep,))]
    if not steps:  # index lookup plan: replace with a mismarked scan
        lookup = next(
            s for s in plan.steps if isinstance(s, IndexLookupStep)
        )
        plan.steps[plan.steps.index(lookup)] = ScanStep(
            lookup.quantifier, correlated_to_self=True
        )
    else:
        steps[0].correlated_to_self = True
    _assert_fires(catalog, plan, "PLN004")


def test_pln008_negative_cardinality(catalog):
    graph, plan = _root_plan(catalog, INDEX_JOIN)
    plan.estimated_rows = -4.0
    _assert_fires(catalog, plan, "PLN008")


def test_pln008_nan_cardinality(catalog):
    graph, plan = _root_plan(catalog, INDEX_JOIN)
    plan.estimated_rows = float("nan")
    _assert_fires(catalog, plan, "PLN008")


def test_pln009_hash_join_arity_mismatch(catalog):
    graph, plan = _root_plan(catalog, HASH_JOIN)
    _assert_clean(catalog, plan)
    join = next(s for s in plan.steps if isinstance(s, HashJoinStep))
    join.null_safe = (False,) * (len(join.build_exprs) + 1)
    _assert_fires(catalog, plan, "PLN009")


def test_pln009_index_key_arity_mismatch(catalog):
    graph, plan = _root_plan(catalog, INDEX_JOIN)
    lookup = next(
        s for s in plan.steps if isinstance(s, IndexLookupStep)
    )
    lookup.key_exprs = lookup.key_exprs + lookup.key_exprs
    _assert_fires(catalog, plan, "PLN009")


def test_pln010_dropped_access_step(catalog):
    graph, plan = _root_plan(catalog, INDEX_JOIN)
    access = next(
        s for s in plan.steps
        if isinstance(s, (ScanStep, IndexLookupStep, HashJoinStep))
    )
    plan.steps.remove(access)
    _assert_fires(catalog, plan, "PLN010")


def test_pln010_duplicated_access_step(catalog):
    graph, plan = _root_plan(catalog, INDEX_JOIN)
    scan = next(s for s in plan.steps if isinstance(s, ScanStep))
    plan.steps.append(ScanStep(scan.quantifier))
    _assert_fires(catalog, plan, "PLN010")


# -- graph mutations (PLN001, PLN005-PLN007) -----------------------------------


def test_pln001_renamed_producer_output(catalog):
    graph = build_qgm(parse_statement(CORRELATED_COUNT), catalog)
    engine = RewriteEngine(catalog, validate=False)
    graph = engine.rewrite(graph, Strategy("magic"))
    assert not [
        d for d in interface_diagnostics(graph, catalog)
        if d.severity is Severity.ERROR
    ]
    victim_box = graph.root.quantifiers[0].box
    victim_box.outputs[0].name = "renamed_away"
    codes = _codes(interface_diagnostics(graph, catalog))
    assert "PLN001" in codes


def test_pln005_sum_over_string(catalog):
    graph = build_qgm(parse_statement(
        "SELECT d.name FROM dept d WHERE d.budget > "
        "(SELECT sum(e.name) FROM emp e WHERE e.building = d.building)"
    ), catalog)
    assert "PLN005" in _codes(interface_diagnostics(graph, catalog))


def test_pln006_stripped_coalesce_guard(catalog):
    # Ganski/Wong without its COALESCE fix: the grouped COUNT flows
    # through the outer join raw, so empty groups yield NULL where the
    # original query produced 0 -- the nullable face of the COUNT bug.
    from repro.qgm.model import OuterJoinBox

    graph = build_qgm(parse_statement(CORRELATED_COUNT), catalog)
    engine = RewriteEngine(catalog, validate=False)
    graph = engine.rewrite(graph, Strategy("ganski_wong"))
    assert not [
        d for d in interface_diagnostics(graph, catalog)
        if d.code in ("PLN006", "PLN007")
    ]
    outer = next(
        b for b in iter_boxes(graph.root) if isinstance(b, OuterJoinBox)
    )
    for output in outer.outputs:
        expr = output.expr
        if getattr(expr, "name", "").lower() == "coalesce":
            output.expr = expr.args[0]  # strip the guard
    assert "PLN006" in _codes(interface_diagnostics(graph, catalog))


def test_pln007_kim_rewrite_count_bug(catalog):
    # Not a synthetic mutation: Kim's actual rewrite output IS the seeded
    # defect -- the analyzer proves the paper's section 2.1 claim.
    graph = build_qgm(parse_statement(CORRELATED_COUNT), catalog)
    engine = RewriteEngine(catalog, validate=False)
    graph = engine.rewrite(graph, Strategy("kim"))
    assert "PLN007" in _codes(interface_diagnostics(graph, catalog))


def test_mutation_coverage_is_at_least_ten_distinct_codes():
    """The acceptance bar: this suite seeds >= 10 distinct diagnostics."""
    import inspect
    import sys

    module = sys.modules[__name__]
    source = inspect.getsource(module)
    seeded = {
        code for code in (
            [f"PLN{i:03d}" for i in range(1, 11)]
            + ["CONC001", "CONC002", "CONC003"]
        )
        if f'"{code}"' in source
    }
    assert len(seeded) >= 10, sorted(seeded)


# -- concurrency-lint mutations (CONC001-CONC003) ------------------------------

SERVICE_OK = '''
import threading

class QueryService:
    def __init__(self):
        self._lock = threading.Lock()
        self._queue = []

    def submit(self, item):
        with self._lock:
            self._queue.append(item)
'''

SERVICE_UNGUARDED = SERVICE_OK.replace(
    "        with self._lock:\n            self._queue.append(item)",
    "        self._queue.append(item)",
)

ORDER_VIOLATION = '''
class Table:
    def refresh(self, catalog):
        with self._lock:
            with catalog._lock:
                pass
'''

SELF_DEADLOCK = '''
class Table:
    def grow(self):
        with self._lock:
            with self._lock:
                pass
'''

REENTRANT_OK = '''
class Catalog:
    def create(self, table):
        with self._lock:
            with self._lock:
                self._tables["x"] = table
'''

UNDECLARED_LOCK = '''
import threading

class Table:
    def audit(self):
        with self._stats_lock:
            pass
'''

CALLER_HOLDS_EXEMPT = '''
class CircuitBreaker:
    def _transition(self, to_state):
        """Move to ``to_state`` (caller holds the lock)."""
        self._state = to_state
'''


def test_conc_clean_fixture_has_no_findings():
    assert lint_source(SERVICE_OK, "fixture.py") == []


def test_conc002_unguarded_mutation():
    codes = _codes(lint_source(SERVICE_UNGUARDED, "fixture.py"))
    assert codes == {"CONC002"}


def test_conc001_lock_order_violation():
    codes = _codes(lint_source(ORDER_VIOLATION, "fixture.py"))
    assert codes == {"CONC001"}


def test_conc001_self_deadlock():
    codes = _codes(lint_source(SELF_DEADLOCK, "fixture.py"))
    assert codes == {"CONC001"}


def test_conc001_reentrant_lock_may_nest():
    assert lint_source(REENTRANT_OK, "fixture.py") == []


def test_conc003_undeclared_lock():
    codes = _codes(lint_source(UNDECLARED_LOCK, "fixture.py"))
    assert codes == {"CONC003"}


def test_conc002_caller_holds_docstring_exempts():
    assert lint_source(CALLER_HOLDS_EXEMPT, "fixture.py") == []


def test_whole_graph_verifier_catches_plan_mutation_via_query_plan(catalog):
    # verify_query_plan plans fresh step lists, so graph-level corruption
    # is what reaches it: rename an output column its consumer (the AVG
    # aggregate above the inner select) references by name.
    graph = build_qgm(parse_statement(
        "SELECT d.name FROM dept d WHERE d.budget > "
        "(SELECT avg(e.salary) FROM emp e WHERE e.building = d.building)"
    ), catalog)
    diags, summary = verify_query_plan(catalog, graph)
    assert summary["errors"] == 0
    inner = next(
        b for b in iter_boxes(graph.root)
        if isinstance(b, SelectBox) and b is not graph.root
    )
    inner.outputs[0].name = "gone"
    diags, summary = verify_query_plan(catalog, graph)
    assert summary["errors"] > 0
    assert "PLN001" in _codes(diags)
