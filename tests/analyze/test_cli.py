"""The ``python -m repro lint`` subcommand: output and exit codes."""

import pytest

from repro.__main__ import main
from repro.sql.splitter import split_statements

SCHEMA = (
    "CREATE TABLE dept (name VARCHAR(30) PRIMARY KEY, budget FLOAT, "
    "num_emps INT, building VARCHAR(30));\n"
    "CREATE TABLE emp (empno INT PRIMARY KEY, name VARCHAR(30), "
    "building VARCHAR(30), salary FLOAT);\n"
)


@pytest.fixture
def schema_file(tmp_path):
    path = tmp_path / "schema.sql"
    path.write_text(SCHEMA)
    return str(path)


def test_lint_clean_query_exits_zero(schema_file, capsys):
    code = main(["lint", "SELECT d.name FROM dept d", "--db", schema_file])
    out = capsys.readouterr().out
    assert code == 0
    assert "0 error(s)" in out
    assert "strategy applicability:" in out


def test_lint_error_exits_nonzero(schema_file, capsys):
    code = main(["lint", "SELECT d.nme FROM dept d", "--db", schema_file])
    out = capsys.readouterr().out
    assert code == 1
    assert "error[SEM002]" in out
    assert "did you mean 'name'?" in out


def test_lint_quiet_suppresses_analysis(schema_file, capsys):
    code = main([
        "lint", "--quiet",
        "SELECT d.name FROM dept d WHERE d.num_emps > "
        "(SELECT count(*) FROM emp e WHERE e.building = d.building)",
        "--db", schema_file,
    ])
    out = capsys.readouterr().out
    assert code == 0  # warnings do not fail the lint
    assert "warning[QGM002]" in out
    assert "strategy applicability:" not in out


def test_lint_script_reports_every_statement(schema_file, tmp_path, capsys):
    script = tmp_path / "queries.sql"
    script.write_text(
        "SELECT d.name FROM dept d;\n"
        "SELECT FROM WHERE;\n"
        "SELECT d.nosuch FROM dept d;\n"
    )
    code = main(["lint", "--script", str(script), "--db", schema_file])
    out = capsys.readouterr().out
    assert code == 1
    assert "statement 1" in out and "statement 3" in out
    # The parse error in statement 2 does not stop statement 3's analysis.
    assert "error[SYN002]" in out and "error[SEM002]" in out


def test_split_statements_respects_literals_and_comments():
    script = (
        "SELECT ';' FROM dept; -- trailing ; comment\n"
        "SELECT 1"
    )
    assert split_statements(script) == [
        "SELECT ';' FROM dept",
        "-- trailing ; comment\nSELECT 1",
    ]


def test_split_statements_survives_lex_errors():
    assert split_statements("SELECT @ FROM t; SELECT 1") == [
        "SELECT @ FROM t",
        "SELECT 1",
    ]
