"""Semantic-analyzer diagnostics: every SEM/SYN code, positive and negative.

``POSITIVE`` maps each code to SQL that must trigger it; ``NEGATIVE`` maps
each code to a near-miss that must NOT trigger it. A registry-coverage test
enforces that every syntax/semantic code in ``CODES`` appears in both maps,
so adding a code without tests fails the suite.
"""

import pytest

from repro.analyze import CODES, Severity, analyze_sql

POSITIVE = {
    "SYN001": "SELECT @ FROM dept",
    "SYN002": "SELECT FROM WHERE",
    "SEM001": "SELECT x FROM nosuch",
    "SEM002": "SELECT d.nme FROM dept d",
    "SEM003": "SELECT name FROM dept d, emp e",
    "SEM004": "SELECT q.name FROM dept d",
    "SEM005": "SELECT 1 FROM dept d, emp d",
    "SEM006": "SELECT d.name FROM dept d WHERE count(*) > 2",
    "SEM007": "SELECT sum(count(*)) FROM emp e",
    "SEM008": "SELECT d.name FROM dept d HAVING d.budget > 1",
    "SEM009": ("SELECT d.name FROM dept d WHERE d.building IN "
               "(SELECT e.building, e.salary FROM emp e)"),
    "SEM010": "SELECT *",
    "SEM011": "SELECT d.name, count(*) FROM dept d",
    "SEM012": "SELECT d.name FROM dept d UNION SELECT e.name, e.salary FROM emp e",
    "SEM013": "SELECT d.name FROM dept d ORDER BY 3",
    # A binder rule the semantic pass does not model: expression ORDER BY
    # over an aggregated query.
    "SEM099": ("SELECT d.building, count(*) FROM dept d "
               "GROUP BY d.building ORDER BY d.budget"),
    "SEM101": ("SELECT d.name FROM dept d WHERE d.num_emps > "
               "(SELECT count(*) FROM emp e WHERE e.building = d.building)"),
}

NEGATIVE = {
    "SYN001": "SELECT 1",
    "SYN002": "SELECT 1",
    "SEM001": "SELECT d.name FROM dept d",
    "SEM002": "SELECT d.name FROM dept d",
    "SEM003": "SELECT d.name FROM dept d, emp e",
    "SEM004": "SELECT d.name FROM dept d",
    "SEM005": "SELECT 1 FROM dept d, emp e",
    "SEM006": ("SELECT d.building FROM dept d GROUP BY d.building "
               "HAVING count(*) > 1"),
    "SEM007": "SELECT sum(e.salary) FROM emp e",
    "SEM008": "SELECT d.name FROM dept d GROUP BY d.name HAVING count(*) > 0",
    "SEM009": ("SELECT d.name FROM dept d WHERE d.building IN "
               "(SELECT e.building FROM emp e)"),
    "SEM010": "SELECT * FROM dept",
    "SEM011": ("SELECT d.building, count(*) FROM dept d "
               "GROUP BY d.building"),
    "SEM012": "SELECT d.name FROM dept d UNION SELECT e.name FROM emp e",
    "SEM013": "SELECT d.name FROM dept d ORDER BY 1",
    "SEM099": ("SELECT d.building, count(*) FROM dept d "
               "GROUP BY d.building ORDER BY 2"),
    "SEM101": ("SELECT d.name FROM dept d WHERE d.num_emps > "
               "(SELECT count(*) FROM emp e)"),
}


def _codes(catalog, sql):
    return {d.code for d in analyze_sql(sql, catalog).diagnostics}


@pytest.mark.parametrize("code", sorted(POSITIVE))
def test_code_fires(empdept_catalog, code):
    assert code in _codes(empdept_catalog, POSITIVE[code])


@pytest.mark.parametrize("code", sorted(NEGATIVE))
def test_code_does_not_fire_on_near_miss(empdept_catalog, code):
    assert code not in _codes(empdept_catalog, NEGATIVE[code])


def test_every_sem_and_syn_code_is_covered():
    sem_syn = {c for c in CODES if c.startswith(("SEM", "SYN"))}
    assert sem_syn == set(POSITIVE) == set(NEGATIVE)


def test_multiple_diagnostics_per_query(empdept_catalog):
    """The analyzer reports every problem, not just the first BindError."""
    report = analyze_sql(
        "SELECT d.nme, q.x FROM dept d WHERE d.budgt > 1", empdept_catalog
    )
    codes = sorted(d.code for d in report.errors)
    assert codes == ["SEM002", "SEM002", "SEM004"]


def test_unknown_table_does_not_cascade(empdept_catalog):
    """An unknown FROM relation becomes a wildcard: its columns resolve."""
    report = analyze_sql(
        "SELECT n.anything FROM nosuch n WHERE n.other > 1", empdept_catalog
    )
    assert [d.code for d in report.errors] == ["SEM001"]


def test_spans_point_at_the_offending_token(empdept_catalog):
    report = analyze_sql("SELECT d.nme FROM dept d", empdept_catalog)
    (diag,) = report.errors
    assert diag.span is not None
    assert (diag.span.line, diag.span.column) == (1, 8)
    assert diag.span.start == 7 and diag.span.end == 12


def test_hints_suggest_close_names(empdept_catalog):
    report = analyze_sql("SELECT d.nme FROM dept d", empdept_catalog)
    assert report.errors[0].hint == "did you mean 'name'?"
    report = analyze_sql("SELECT 1 FROM dpet", empdept_catalog)
    assert report.errors[0].hint == "did you mean 'dept'?"


def test_correlation_depth_is_counted(empdept_catalog):
    """A reference crossing two block levels reports depth 2."""
    sql = (
        "SELECT d.name FROM dept d WHERE EXISTS "
        "(SELECT e.name FROM emp e WHERE e.salary > "
        "(SELECT avg(e2.salary) FROM emp e2 WHERE e2.building = d.building))"
    )
    report = analyze_sql(sql, empdept_catalog)
    depths = [d.message for d in report.diagnostics_for("SEM101")]
    assert any("2 query block level" in m for m in depths)


def test_correlated_derived_table_counts_as_correlation(empdept_catalog):
    """The paper's Query 3 shape: a sibling-correlated table expression."""
    sql = (
        "SELECT d.name, t.avg_sal FROM dept d, T(avg_sal) AS "
        "(SELECT avg(e.salary) FROM emp e WHERE e.building = d.building)"
    )
    report = analyze_sql(sql, empdept_catalog)
    assert report.ok
    assert report.has("SEM101")


def test_views_resolve_without_repeating_their_diagnostics(empdept_catalog):
    empdept_catalog.create_view(
        "big_depts", "SELECT d.name, d.budget FROM dept d WHERE d.budget > 1000"
    )
    report = analyze_sql("SELECT b.name FROM big_depts b", empdept_catalog)
    assert report.ok and not report.diagnostics_for("SEM101")
    report = analyze_sql("SELECT b.nosuch FROM big_depts b", empdept_catalog)
    assert [d.code for d in report.errors] == ["SEM002"]


def test_insert_into_unknown_table(empdept_catalog):
    report = analyze_sql("INSERT INTO nosuch VALUES (1)", empdept_catalog)
    assert report.has("SEM001")


def test_severities(empdept_catalog):
    report = analyze_sql(POSITIVE["SEM101"], empdept_catalog)
    by_code = {d.code: d.severity for d in report.diagnostics}
    assert by_code["SEM101"] is Severity.INFO
    assert by_code["QGM002"] is Severity.WARNING
