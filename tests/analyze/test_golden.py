"""Golden-file tests for rendered analysis reports.

Each case renders ``Database.analyze(sql).render()`` and compares it with
the checked-in file under ``tests/analyze/golden/``. QGM box ids come from
a process-global counter, so ``box <n>`` is normalized to ``box #`` before
comparing. Regenerate after an intentional output change with::

    REGEN_GOLDEN=1 PYTHONPATH=src python -m pytest tests/analyze/test_golden.py
"""

import os
import re
from pathlib import Path

import pytest

from repro.analyze import analyze_sql

GOLDEN_DIR = Path(__file__).parent / "golden"

CASES = {
    "syntax_error": "SELECT FROM WHERE",
    "unknown_column_with_hint": "SELECT d.nme FROM dept d",
    "multiple_errors": "SELECT d.nme, q.x FROM dept d WHERE d.budgt > 1",
    "ambiguous_column": "SELECT name, building FROM dept d, emp e",
    "count_bug_report": (
        "SELECT d.name FROM dept d WHERE d.num_emps > "
        "(SELECT count(*) FROM emp e WHERE e.building = d.building)"
    ),
    "table_expression_report": (
        "SELECT d.name, t.avg_sal FROM dept d, T(avg_sal) AS "
        "(SELECT avg(e.salary) FROM emp e WHERE e.building = d.building)"
    ),
    "clean_query": "SELECT d.name, d.budget FROM dept d ORDER BY 2",
}


def _normalize(text: str) -> str:
    return re.sub(r"box \d+", "box #", text).rstrip() + "\n"


@pytest.mark.parametrize("name", sorted(CASES))
def test_rendered_report_matches_golden(empdept_catalog, name):
    rendered = _normalize(analyze_sql(CASES[name], empdept_catalog).render())
    path = GOLDEN_DIR / f"{name}.txt"
    if os.environ.get("REGEN_GOLDEN"):
        path.write_text(rendered)
    assert path.exists(), f"golden file missing; run with REGEN_GOLDEN=1: {path}"
    assert rendered == path.read_text()


def test_no_stale_golden_files():
    expected = {f"{name}.txt" for name in CASES}
    actual = {p.name for p in GOLDEN_DIR.glob("*.txt")}
    assert actual == expected
