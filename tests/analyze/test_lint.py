"""QGM lint rules, correlation-pattern classification, strategy verdicts."""

import pytest

from repro.analyze import (
    CODES,
    Severity,
    analyze_sql,
    classify_patterns,
    lint_graph,
    strategy_verdicts,
)
from repro.qgm import build_qgm
from repro.sql.parser import parse_statement
from repro.storage import Catalog, Column, Schema
from repro.types import SQLType

COUNT_SUBQUERY = (
    "SELECT d.name FROM dept d WHERE d.num_emps > "
    "(SELECT count(*) FROM emp e WHERE e.building = d.building)"
)
AVG_SUBQUERY = (
    "SELECT d.name FROM dept d WHERE d.budget > "
    "(SELECT avg(e.salary) FROM emp e WHERE e.building = d.building)"
)


def _graph(catalog, sql):
    return build_qgm(parse_statement(sql), catalog)


def _patterns(catalog, sql):
    return classify_patterns(_graph(catalog, sql))


def _verdict(catalog, sql, strategy):
    graph = _graph(catalog, sql)
    by_name = {v.strategy: v for v in strategy_verdicts(graph, catalog)}
    return by_name[strategy]


# -- pattern classification ----------------------------------------------------


@pytest.mark.parametrize(
    "sql, kind, correlated",
    [
        (COUNT_SUBQUERY, "scalar-agg", True),
        ("SELECT d.name FROM dept d WHERE d.budget > "
         "(SELECT avg(e.salary) FROM emp e)", "scalar-agg", False),
        ("SELECT d.name FROM dept d WHERE d.budget > "
         "(SELECT e.salary FROM emp e WHERE e.name = d.name)", "scalar", True),
        ("SELECT d.name FROM dept d WHERE EXISTS "
         "(SELECT 1 FROM emp e WHERE e.building = d.building)", "exists", True),
        ("SELECT d.name FROM dept d WHERE d.building IN "
         "(SELECT e.building FROM emp e)", "set-containment", False),
        ("SELECT d.name FROM dept d WHERE d.budget > ALL "
         "(SELECT e.salary FROM emp e WHERE e.building = d.building)",
         "quantified-comparison", True),
        ("SELECT d.name, t.avg_sal FROM dept d, T(avg_sal) AS "
         "(SELECT avg(e.salary) FROM emp e WHERE e.building = d.building)",
         "table-expression", True),
    ],
)
def test_pattern_classification(empdept_catalog, sql, kind, correlated):
    patterns = _patterns(empdept_catalog, sql)
    assert [(p.kind, p.correlated) for p in patterns] == [(kind, correlated)]


def test_count_bug_flag(empdept_catalog):
    (p,) = _patterns(empdept_catalog, COUNT_SUBQUERY)
    assert p.count_bug and "COUNT-bug exposed" in p.describe()
    (p,) = _patterns(empdept_catalog, AVG_SUBQUERY)
    assert not p.count_bug


def test_uncorrelated_query_has_no_patterns(empdept_catalog):
    assert _patterns(empdept_catalog, "SELECT d.name FROM dept d") == []


def test_nested_table_expressions_report_once(empdept_catalog):
    """Query 3's shape: the outermost correlated table expression claims its
    subtree, so the nested derived table is not double-reported."""
    sql = (
        "SELECT d.name, t.v FROM dept d, T(v) AS "
        "(SELECT u.v2 FROM U(v2) AS "
        "(SELECT avg(e.salary) FROM emp e WHERE e.building = d.building))"
    )
    patterns = _patterns(empdept_catalog, sql)
    assert [p.kind for p in patterns] == ["table-expression"]


# -- lint rules ----------------------------------------------------------------


def test_qgm001_fires_on_corrupted_graph(empdept_catalog):
    graph = _graph(empdept_catalog, "SELECT d.name, d.budget FROM dept d")
    graph.root.outputs.append(graph.root.outputs[0])  # duplicate output name
    diags = [d for d in lint_graph(graph, empdept_catalog) if d.code == "QGM001"]
    assert len(diags) == 1
    assert diags[0].severity is Severity.ERROR
    assert "duplicate output names" in diags[0].message


def test_qgm001_silent_on_consistent_graph(empdept_catalog):
    graph = _graph(empdept_catalog, COUNT_SUBQUERY)
    assert not [d for d in lint_graph(graph, empdept_catalog)
                if d.code == "QGM001"]


def test_qgm002_warns_on_correlated_count(empdept_catalog):
    report = analyze_sql(COUNT_SUBQUERY, empdept_catalog)
    (diag,) = report.diagnostics_for("QGM002")
    assert diag.severity is Severity.WARNING
    # The comparison use is null-rejecting, so the hint applies.
    assert diag.hint is not None and "plain join" in diag.hint


def test_qgm002_negative_cases(empdept_catalog):
    # avg has no COUNT bug; uncorrelated COUNT has no bug either.
    assert not analyze_sql(AVG_SUBQUERY, empdept_catalog).has("QGM002")
    uncorrelated = ("SELECT d.name FROM dept d WHERE d.num_emps > "
                    "(SELECT count(*) FROM emp e)")
    assert not analyze_sql(uncorrelated, empdept_catalog).has("QGM002")


QGM003_SQL = (
    "SELECT d.name FROM dept d WHERE d.budget IN "
    "(SELECT e.salary FROM emp e WHERE e.building = d.building "
    "UNION SELECT e2.salary FROM emp e2 WHERE e2.name = d.name)"
)


def test_qgm003_fires_on_correlated_setop(empdept_catalog):
    report = analyze_sql(QGM003_SQL, empdept_catalog)
    assert report.has("QGM003")


def test_qgm003_negative_on_uncorrelated_setop(empdept_catalog):
    sql = ("SELECT d.name FROM dept d "
           "UNION SELECT e.name FROM emp e")
    assert not analyze_sql(sql, empdept_catalog).has("QGM003")


QGM004_SQL = (
    "SELECT d.name FROM dept d, emp e WHERE d.budget > "
    "(SELECT avg(e1.salary) FROM emp e1 "
    "WHERE e1.building = d.building AND e1.name = e.name)"
)


def test_qgm004_fires_on_multi_quantifier_correlation(empdept_catalog):
    report = analyze_sql(QGM004_SQL, empdept_catalog)
    (diag,) = report.diagnostics_for("QGM004")
    assert "2 outer quantifiers" in diag.message


def test_qgm004_negative_on_single_quantifier(empdept_catalog):
    assert not analyze_sql(COUNT_SUBQUERY, empdept_catalog).has("QGM004")


def test_every_qgm_and_dec_code_is_exercised(empdept_catalog):
    """Registry coverage for the graph-level codes: each appears in some
    report produced by the suite's canonical queries."""
    seen = set()
    graph = _graph(empdept_catalog, "SELECT d.name, d.budget FROM dept d")
    graph.root.outputs.append(graph.root.outputs[0])
    seen.update(d.code for d in lint_graph(graph, empdept_catalog))
    for sql in (COUNT_SUBQUERY, QGM003_SQL, QGM004_SQL):
        seen.update(d.code for d in analyze_sql(sql, empdept_catalog).diagnostics)
    expected = {c for c in CODES if c.startswith(("QGM", "DEC"))}
    assert expected <= seen


# -- strategy verdicts ---------------------------------------------------------


def test_all_strategies_applicable_to_paper_shape(empdept_catalog):
    graph = _graph(empdept_catalog, AVG_SUBQUERY)
    verdicts = {v.strategy: v for v in strategy_verdicts(graph, empdept_catalog)}
    assert set(verdicts) == {"ni", "kim", "dayal", "ganski_wong",
                             "magic", "magic_opt"}
    assert all(v.applicable for v in verdicts.values())
    assert "fully decorrelated" in verdicts["magic"].reason
    assert "section 5.1" in verdicts["magic_opt"].reason


def test_kim_requires_equality_correlation(empdept_catalog):
    sql = ("SELECT d.name FROM dept d WHERE d.budget > "
           "(SELECT avg(e.salary) FROM emp e WHERE e.salary > d.budget)")
    verdict = _verdict(empdept_catalog, sql, "kim")
    assert not verdict.applicable
    assert verdict.reason == "correlation predicate is not a simple equality"


@pytest.mark.parametrize(
    "sql, reason_part",
    [
        ("SELECT d.name FROM dept d WHERE EXISTS "
         "(SELECT 1 FROM emp e WHERE e.building = d.building)",
         "non-scalar (existential/universal) subquery"),
        ("SELECT d.name FROM dept d WHERE d.budget > "
         "(SELECT e.salary FROM emp e WHERE e.name = d.name)",
         "not a scalar aggregate"),
        ("SELECT d.name, t.avg_sal FROM dept d, T(avg_sal) AS "
         "(SELECT avg(e.salary) FROM emp e WHERE e.building = d.building)",
         "no correlated subquery found"),
        (QGM003_SQL, "not linear"),
    ],
)
def test_kim_rejection_reasons(empdept_catalog, sql, reason_part):
    verdict = _verdict(empdept_catalog, sql, "kim")
    assert not verdict.applicable
    assert reason_part in verdict.reason


def test_ganski_wong_needs_single_outer_table(empdept_catalog):
    verdict = _verdict(empdept_catalog, QGM004_SQL, "ganski_wong")
    assert not verdict.applicable
    assert verdict.reason == "outer block references more than one table"


def test_dayal_needs_outer_keys():
    catalog = Catalog()
    catalog.create_table("t1", Schema([
        Column("a", SQLType.INT), Column("b", SQLType.INT),
    ]))
    catalog.create_table("t2", Schema([
        Column("x", SQLType.INT), Column("y", SQLType.INT),
    ]))
    sql = ("SELECT t1.a FROM t1 WHERE t1.b > "
           "(SELECT avg(t2.y) FROM t2 WHERE t2.x = t1.a)")
    graph = build_qgm(parse_statement(sql), catalog)
    verdicts = {v.strategy: v for v in strategy_verdicts(graph, catalog)}
    assert verdicts["kim"].applicable
    assert not verdicts["dayal"].applicable
    assert verdicts["dayal"].reason == "outer table 't1' has no key to group on"


def test_magic_partial_decorrelation_reason(empdept_catalog):
    verdict = _verdict(empdept_catalog, QGM003_SQL, "magic")
    assert verdict.applicable
    assert "partially decorrelated" in verdict.reason
    assert "section 4.4" in verdict.reason


def test_magic_noop_reason_on_uncorrelated_query(empdept_catalog):
    verdict = _verdict(empdept_catalog, "SELECT d.name FROM dept d", "magic")
    assert verdict.applicable and verdict.reason.endswith("no-op")


def test_verdicts_never_mutate_the_graph(empdept_catalog):
    from repro.qgm import graph_to_text

    graph = _graph(empdept_catalog, AVG_SUBQUERY)
    before = graph_to_text(graph)
    strategy_verdicts(graph, empdept_catalog)
    classify_patterns(graph)
    lint_graph(graph, empdept_catalog)
    assert graph_to_text(graph) == before
