"""The concurrency lint against the real service/storage code: the
DESIGN section-9 contract must hold in CI, not just in prose."""

import os

from repro.analyze.conc import (
    CLASS_LOCKS,
    GUARDED_ATTRS,
    LOCK_FREE_BY_DESIGN,
    LOCK_ORDER,
    default_targets,
    iter_python_files,
    lint_paths,
    lint_source,
)


def test_serve_and_storage_satisfy_the_contract():
    findings = lint_paths(default_targets())
    assert findings == [], [str(d) for d in findings]


def test_default_targets_exist_and_contain_modules():
    targets = default_targets()
    assert all(os.path.exists(t) for t in targets)
    files = list(iter_python_files(targets))
    names = {os.path.basename(f) for f in files}
    assert "service.py" in names      # the query service
    assert "catalog.py" in names      # the storage layer
    assert "cache.py" in names        # the plan cache (rank 15)


def test_lock_order_is_total_and_covers_every_declared_lock():
    ranks = [spec.rank for spec in LOCK_ORDER.values()]
    assert len(ranks) == len(set(ranks)), "order must be total"
    for locks in CLASS_LOCKS.values():
        for key in locks.values():
            assert key in LOCK_ORDER


def test_guarded_classes_declare_their_lock():
    for owner in GUARDED_ATTRS:
        assert owner in CLASS_LOCKS, (
            f"{owner} has guarded attributes but no declared lock"
        )


def test_lock_free_exceptions_do_not_overlap_guarded_attrs():
    for owner, attrs in LOCK_FREE_BY_DESIGN.items():
        assert not attrs & GUARDED_ATTRS.get(owner, frozenset())


def test_unparsable_module_reports_instead_of_crashing():
    findings = lint_source("def broken(:\n", "bad.py")
    assert len(findings) == 1
    assert findings[0].code == "CONC003"
    assert "cannot parse" in findings[0].message


def test_receiver_noun_resolution_catches_cross_object_order():
    source = '''
class StatsCache:
    def rebuild(self, catalog, table):
        with table._lock:
            with catalog._lock:
                pass
'''
    codes = {d.code for d in lint_source(source, "fixture.py")}
    assert codes == {"CONC001"}


def test_service_then_breaker_then_events_is_legal():
    source = '''
class QueryService:
    def _finish(self, breaker, event_log):
        with self._lock:
            with breaker._lock:
                with event_log._lock:
                    pass
'''
    assert lint_source(source, "fixture.py") == []
