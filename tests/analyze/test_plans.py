"""Plan contracts: typed box interfaces, nullability provenance, and the
statically detected COUNT bug (paper section 2.1)."""

import pytest

from repro.analyze.plans import (
    TAINT_AGG_EMPTY,
    TAINT_COUNT_REWRITE,
    TAINT_OUTER_JOIN,
    check_interfaces,
    interface_diagnostics,
    verify_pre_execution,
    verify_query_plan,
)
from repro.api.strategies import Strategy
from repro.errors import PlanError
from repro.qgm import build_qgm
from repro.rewrite import RewriteEngine
from repro.sql.parser import parse_statement
from repro.types import SQLType

COUNT_SUBQUERY = (
    "SELECT d.name FROM dept d WHERE d.num_emps > "
    "(SELECT count(*) FROM emp e WHERE e.building = d.building)"
)
AVG_SUBQUERY = (
    "SELECT d.name FROM dept d WHERE d.budget > "
    "(SELECT avg(e.salary) FROM emp e WHERE e.building = d.building)"
)


def _graph(catalog, sql):
    return build_qgm(parse_statement(sql), catalog)


def _rewritten(catalog, sql, strategy):
    engine = RewriteEngine(catalog, validate=False)
    return engine.rewrite(_graph(catalog, sql), Strategy(strategy))


def _contract_of_root(catalog, sql):
    graph = _graph(catalog, sql)
    inferencer = check_interfaces(graph, catalog)
    return inferencer.memo[graph.root.id], inferencer


# -- contract inference --------------------------------------------------------


def test_base_table_contract_types_and_key(empdept_catalog):
    graph = _graph(empdept_catalog, "SELECT d.name FROM dept d")
    inferencer = check_interfaces(graph, empdept_catalog)
    base = next(
        c for c in inferencer.memo.values() if c.kind == "base_table"
    )
    by_name = {col.name: col for col in base.columns}
    assert by_name["name"].type is SQLType.STR
    assert not by_name["name"].nullable      # declared NOT NULL
    assert by_name["budget"].type is SQLType.FLOAT
    assert by_name["budget"].nullable
    assert ("name",) in base.unique          # primary key
    assert base.rows == 7                    # catalog cardinality bound


def test_select_passes_types_and_keys_through(empdept_catalog):
    contract, _ = _contract_of_root(
        empdept_catalog, "SELECT d.name, d.budget FROM dept d"
    )
    assert contract.names() == ["name", "budget"]
    assert contract.column("name").type is SQLType.STR
    assert ("name",) in contract.unique      # pk survives pure projection


def test_distinct_makes_output_unique(empdept_catalog):
    contract, _ = _contract_of_root(
        empdept_catalog, "SELECT DISTINCT d.building FROM dept d"
    )
    assert ("building",) in contract.unique


def test_scalar_count_is_total_and_untainted(empdept_catalog):
    contract, inferencer = _contract_of_root(
        empdept_catalog,
        "SELECT d.name FROM dept d WHERE d.num_emps > "
        "(SELECT count(*) FROM emp e)",
    )
    scalar = next(
        c for c in inferencer.memo.values()
        if c.kind == "groupby" and c.exactly_one
    )
    count_col = scalar.columns[0]
    assert count_col.type is SQLType.INT
    assert not count_col.nullable
    assert not count_col.taint               # scalar COUNT is total


def test_sum_carries_agg_empty_taint(empdept_catalog):
    _, inferencer = _contract_of_root(empdept_catalog, AVG_SUBQUERY)
    agg = next(c for c in inferencer.memo.values() if c.kind == "groupby")
    assert TAINT_AGG_EMPTY in agg.columns[0].taint
    assert agg.columns[0].nullable           # AVG of an empty input is NULL


def test_grouped_count_is_tainted_after_kim(empdept_catalog):
    graph = _rewritten(empdept_catalog, COUNT_SUBQUERY, "kim")
    inferencer = check_interfaces(graph, empdept_catalog)
    grouped = next(
        c for c in inferencer.memo.values()
        if c.kind == "groupby" and not c.exactly_one
    )
    tainted = [
        col for col in grouped.columns if TAINT_COUNT_REWRITE in col.taint
    ]
    assert tainted, "Kim's grouped COUNT output must carry count-rewrite"


def test_kim_count_bug_flagged_as_pln007(empdept_catalog):
    graph = _rewritten(empdept_catalog, COUNT_SUBQUERY, "kim")
    codes = {d.code for d in interface_diagnostics(graph, empdept_catalog)}
    assert "PLN007" in codes


def test_ganski_wong_outer_join_clears_count_hazard(empdept_catalog):
    graph = _rewritten(empdept_catalog, COUNT_SUBQUERY, "ganski_wong")
    diags = interface_diagnostics(graph, empdept_catalog)
    assert not [d for d in diags if d.code in ("PLN006", "PLN007")]


def test_outer_join_taints_null_producing_side(empdept_catalog):
    graph = _graph(
        empdept_catalog,
        "SELECT * FROM dept d LEFT OUTER JOIN emp e "
        "ON d.building = e.building",
    )
    inferencer = check_interfaces(graph, empdept_catalog)
    outer = next(
        c for c in inferencer.memo.values() if c.kind == "outerjoin"
    )
    # emp.empno is declared NOT NULL, but as the null-producing side of
    # the join it comes back nullable, with provenance.
    empno = next(c for c in outer.columns if "empno" in c.name)
    assert empno.nullable
    assert TAINT_OUTER_JOIN in empno.taint
    # The preserved side keeps its declared nullability.
    dept_name = next(c for c in outer.columns if "d_name" in c.name)
    assert not dept_name.nullable


def test_ganski_wong_outer_join_output_is_coalesce_fixed(empdept_catalog):
    # The rewrite wraps the grouped COUNT in COALESCE(.., 0) inside the
    # outer join's output list: the fix is applied at the source, so the
    # outer-join contract itself is already clean.
    graph = _rewritten(empdept_catalog, COUNT_SUBQUERY, "ganski_wong")
    inferencer = check_interfaces(graph, empdept_catalog)
    outer = next(
        c for c in inferencer.memo.values() if c.kind == "outerjoin"
    )
    count_col = next(c for c in outer.columns if "count" in c.name)
    assert not count_col.nullable
    assert not count_col.taint


def test_magic_strategy_verifies_clean(empdept_catalog):
    graph = _rewritten(empdept_catalog, COUNT_SUBQUERY, "magic")
    diags, summary = verify_query_plan(empdept_catalog, graph)
    assert summary["errors"] == 0
    assert not [d for d in diags if d.code in ("PLN006", "PLN007")]


def test_sum_over_string_is_pln005(empdept_catalog):
    graph = _graph(
        empdept_catalog,
        "SELECT d.name FROM dept d WHERE d.budget > "
        "(SELECT sum(e.name) FROM emp e WHERE e.building = d.building)",
    )
    codes = {d.code for d in interface_diagnostics(graph, empdept_catalog)}
    assert "PLN005" in codes


def test_min_over_string_is_legal(empdept_catalog):
    graph = _graph(
        empdept_catalog,
        "SELECT d.name FROM dept d WHERE d.name > "
        "(SELECT min(e.name) FROM emp e WHERE e.building = d.building)",
    )
    assert not interface_diagnostics(graph, empdept_catalog)


def test_coalesce_clears_count_taint(empdept_catalog):
    # The magic rewrite's own COUNT-bug fix: COALESCE(count_col, 0) is
    # NOT NULL again, and the count-rewrite taint is dropped with it.
    graph = _rewritten(empdept_catalog, COUNT_SUBQUERY, "magic")
    inferencer = check_interfaces(graph, empdept_catalog)
    roots = [inferencer.memo[graph.root.id]]
    assert all(
        TAINT_COUNT_REWRITE not in col.taint
        for contract in roots for col in contract.columns
    )


# -- plan verification over whole strategies -----------------------------------


@pytest.mark.parametrize(
    "strategy", ["ni", "kim", "dayal", "ganski_wong", "magic", "magic_opt"]
)
@pytest.mark.parametrize("sql", [COUNT_SUBQUERY, AVG_SUBQUERY])
def test_every_strategy_plans_without_errors(empdept_catalog, strategy, sql):
    graph = _rewritten(empdept_catalog, sql, strategy)
    diags, summary = verify_query_plan(empdept_catalog, graph)
    errors = [d for d in diags if d.severity.value == "error"]
    assert not errors, [str(d) for d in errors]
    assert summary["plans"] >= 1
    assert summary["steps"] >= summary["plans"]


def test_verify_pre_execution_returns_summary(empdept_catalog):
    graph = _rewritten(empdept_catalog, AVG_SUBQUERY, "magic")
    summary = verify_pre_execution(empdept_catalog, graph)
    assert summary["errors"] == 0
    assert summary["boxes"] == summary["plans"] + (
        summary["boxes"] - summary["plans"]
    )
    assert set(summary) == {
        "boxes", "plans", "steps", "columns", "nullable_columns",
        "tainted_columns", "errors", "warnings",
    }


def test_validated_execution_emits_plan_verified_event(empdept_catalog):
    from repro.api.database import Database
    from repro.obs import EventLog, RingSink

    db = Database(
        catalog=empdept_catalog, validate=True,
        events=EventLog(RingSink()),
    )
    result = db.execute(AVG_SUBQUERY, strategy=Strategy("magic"))
    assert result.rows is not None
    verified = [
        e for e in db.events.events() if e["kind"] == "plan.verified"
    ]
    assert len(verified) == 1
    event = verified[0]
    assert event["errors"] == 0
    assert event["plans"] >= 1
    assert event["query_id"] is not None
    assert {"boxes", "steps", "columns", "nullable_columns",
            "tainted_columns", "warnings"} <= set(event)


def test_unvalidated_execution_emits_no_plan_verified_event(empdept_catalog):
    from repro.api.database import Database
    from repro.obs import EventLog, RingSink

    db = Database(
        catalog=empdept_catalog, validate=False,
        events=EventLog(RingSink()),
    )
    db.execute(AVG_SUBQUERY, strategy=Strategy("magic"))
    assert not [
        e for e in db.events.events() if e["kind"] == "plan.verified"
    ]


def test_verify_pre_execution_raises_on_corrupt_graph(empdept_catalog):
    graph = _rewritten(empdept_catalog, AVG_SUBQUERY, "magic")
    # Rename an output column after the fact: consumers now reference a
    # column absent from the producer's contract.
    box = graph.root
    quantifier = box.quantifiers[0]
    victim = quantifier.box.outputs[0]
    victim.name = "vanished"
    with pytest.raises(PlanError, match="PLN001"):
        verify_pre_execution(empdept_catalog, graph)
