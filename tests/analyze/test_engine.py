"""RewriteEngine: per-step invariant checking and strategy dispatch."""

import re

import pytest

from repro import Database, Strategy
from repro.errors import QGMConsistencyError, RewriteError
from repro.qgm import build_qgm
from repro.rewrite import RewriteEngine, env_validate_default
from repro.sql.parser import parse_statement

SQL = (
    "SELECT d.name FROM dept d WHERE d.budget > "
    "(SELECT avg(e.salary) FROM emp e WHERE e.building = d.building)"
)


def _graph(catalog, sql=SQL):
    return build_qgm(parse_statement(sql), catalog)


@pytest.mark.parametrize(
    "strategy", ["ni", "kim", "dayal", "ganski_wong", "magic", "magic_opt"]
)
def test_all_strategies_pass_per_step_validation(empdept_catalog, strategy):
    engine = RewriteEngine(empdept_catalog, validate=True)
    engine.rewrite(_graph(empdept_catalog), strategy)


def test_steps_are_recorded(empdept_catalog):
    engine = RewriteEngine(empdept_catalog, validate=True)
    engine.rewrite(_graph(empdept_catalog), "magic")
    assert engine.steps  # at least one rewrite step ran
    magic_steps = list(engine.steps)
    engine.rewrite(_graph(empdept_catalog), "ni")
    assert engine.steps == []  # reset per rewrite; ni has no steps
    assert magic_steps  # the earlier list object is untouched


def test_enum_and_string_dispatch_agree(empdept_catalog):
    # Box ids are process-global, so normalize them out of the step texts.
    def normalize(steps):
        return [re.sub(r"box \d+", "box #", s) for s in steps]

    engine = RewriteEngine(empdept_catalog, validate=True)
    engine.rewrite(_graph(empdept_catalog), Strategy.MAGIC)
    by_enum = normalize(engine.steps)
    engine.rewrite(_graph(empdept_catalog), "magic")
    assert normalize(engine.steps) == by_enum


def test_unknown_strategy_rejected(empdept_catalog):
    engine = RewriteEngine(empdept_catalog)
    with pytest.raises(RewriteError, match="unknown strategy"):
        engine.rewrite(_graph(empdept_catalog), "bogus")


def test_check_raises_with_step_context(empdept_catalog):
    engine = RewriteEngine(empdept_catalog, validate=True)
    graph = _graph(empdept_catalog)
    graph.root.outputs.append(graph.root.outputs[0])
    with pytest.raises(QGMConsistencyError) as exc:
        engine.check(graph, "step 'unit test'")
    assert "rewrite invariant violated after step 'unit test'" in str(exc.value)
    assert "duplicate output names" in str(exc.value)


def test_corrupted_bind_is_caught_before_rewriting(empdept_catalog):
    engine = RewriteEngine(empdept_catalog, validate=True)
    graph = _graph(empdept_catalog)
    graph.root.outputs.append(graph.root.outputs[0])
    with pytest.raises(QGMConsistencyError, match="after bind"):
        engine.rewrite(graph, "magic")


def test_user_hook_corruption_is_detected(empdept_catalog):
    """A hook that breaks the graph mid-rewrite trips the next check --
    the section-3 contract is enforced after *every* step."""

    def corrupt(description, graph):
        graph.root.outputs.append(graph.root.outputs[0])

    engine = RewriteEngine(empdept_catalog, validate=True, on_step=corrupt)
    with pytest.raises(QGMConsistencyError, match="rewrite invariant violated"):
        engine.rewrite(_graph(empdept_catalog), "magic")


def test_user_hook_receives_steps(empdept_catalog):
    seen = []
    engine = RewriteEngine(
        empdept_catalog, validate=False,
        on_step=lambda desc, graph: seen.append(desc),
    )
    engine.rewrite(_graph(empdept_catalog), "kim")
    assert seen == engine.steps


def test_env_validate_default(monkeypatch):
    monkeypatch.delenv("REPRO_VALIDATE", raising=False)
    assert env_validate_default() is False
    monkeypatch.setenv("REPRO_VALIDATE", "0")
    assert env_validate_default() is False
    monkeypatch.setenv("REPRO_VALIDATE", "1")
    assert env_validate_default() is True


def test_env_variable_reaches_engine(monkeypatch, empdept_catalog):
    monkeypatch.setenv("REPRO_VALIDATE", "1")
    assert RewriteEngine(empdept_catalog).validate is True
    monkeypatch.delenv("REPRO_VALIDATE")
    assert RewriteEngine(empdept_catalog).validate is False
    # An explicit argument wins over the environment.
    monkeypatch.setenv("REPRO_VALIDATE", "1")
    assert RewriteEngine(empdept_catalog, validate=False).validate is False


def test_database_plumbs_validate_flag(empdept_catalog):
    assert Database(empdept_catalog, validate=True).engine.validate is True
    assert Database(empdept_catalog, validate=False).engine.validate is False


def test_validated_execution_results_match(empdept_catalog):
    checked = Database(empdept_catalog, validate=True)
    unchecked = Database(empdept_catalog, validate=False)
    for strategy in (Strategy.NESTED_ITERATION, Strategy.MAGIC):
        a = checked.execute(SQL, strategy=strategy)
        b = unchecked.execute(SQL, strategy=strategy)
        assert sorted(a.rows) == sorted(b.rows)
