"""The paper's own queries must lint clean with the expected analysis.

Satellite requirement: TPC-D Query 1/2/3 (``tpcd/queries.py``) produce no
error or warning diagnostics, classify to the correlation patterns the
paper names for them in section 2, and get the strategy-applicability
verdicts sections 2 and 4 predict.
"""

import pytest

from repro.analyze import analyze_sql
from repro.sql.parser import parse_statement
from repro.storage import Catalog
from repro.tpcd.queries import (
    EMP_DEPT_QUERY,
    QUERY_1,
    QUERY_1_VARIANT,
    QUERY_2,
    QUERY_3,
)
from repro.tpcd.schema import create_tpcd_schema


@pytest.fixture(scope="module")
def tpcd_catalog():
    catalog = Catalog()
    create_tpcd_schema(catalog)  # schema only; analysis needs no rows
    return catalog


def _report(catalog, sql):
    parse_statement(sql)  # the paper queries must parse on their own
    return analyze_sql(sql, catalog)


def _verdicts(report):
    return {v.strategy: v for v in report.verdicts}


@pytest.mark.parametrize(
    "sql", [QUERY_1, QUERY_1_VARIANT, QUERY_2, QUERY_3, EMP_DEPT_QUERY]
)
def test_paper_queries_have_no_errors_or_unexpected_warnings(
    tpcd_catalog, empdept_catalog, sql
):
    catalog = empdept_catalog if sql is EMP_DEPT_QUERY else tpcd_catalog
    report = _report(catalog, sql)
    assert report.ok, [d.message for d in report.errors]
    # EMP_DEPT is the paper's COUNT-bug example; the warning is the point.
    if sql is EMP_DEPT_QUERY:
        assert [d.code for d in report.warnings] == ["QGM002"]
    else:
        assert report.warnings == []


@pytest.mark.parametrize("sql", [QUERY_1, QUERY_1_VARIANT, QUERY_2])
def test_query_1_and_2_are_correlated_scalar_aggregates(tpcd_catalog, sql):
    report = _report(tpcd_catalog, sql)
    assert [(p.kind, p.correlated) for p in report.patterns] == [
        ("scalar-agg", True)
    ]
    verdicts = _verdicts(report)
    assert verdicts["kim"].applicable
    assert verdicts["dayal"].applicable
    # Both queries join two outer tables, which Ganski/Wong cannot handle.
    assert not verdicts["ganski_wong"].applicable
    assert (verdicts["ganski_wong"].reason
            == "outer block references more than one table")
    assert "fully decorrelated" in verdicts["magic"].reason


def test_query_3_is_a_correlated_table_expression(tpcd_catalog):
    report = _report(tpcd_catalog, QUERY_3)
    assert [(p.kind, p.correlated) for p in report.patterns] == [
        ("table-expression", True)
    ]
    verdicts = _verdicts(report)
    for strategy in ("kim", "dayal", "ganski_wong"):
        assert not verdicts[strategy].applicable
    assert verdicts["magic"].applicable
    assert "partially decorrelated" in verdicts["magic"].reason


def test_emp_dept_exposes_the_count_bug(empdept_catalog):
    report = _report(empdept_catalog, EMP_DEPT_QUERY)
    (pattern,) = report.patterns
    assert pattern.kind == "scalar-agg" and pattern.count_bug
    verdicts = _verdicts(report)
    assert all(
        verdicts[s].applicable
        for s in ("ni", "kim", "dayal", "ganski_wong", "magic", "magic_opt")
    )
