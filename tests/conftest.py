"""Shared fixtures: the paper's EMP/DEPT example database."""

import pytest

from repro.storage import Catalog, Column, Schema
from repro.types import SQLType


@pytest.fixture
def empdept_catalog() -> Catalog:
    """EMP/DEPT from section 2, with data crafted so that:

    * dept 'd_low' (budget 500, num_emps 1) is in building 'B9' which has
      NO employees -> the COUNT-bug department: a correct engine returns it
      (1 > 0), Kim's method loses it;
    * buildings 'B1' and 'B2' have duplicate department rows -> duplicate
      correlation values;
    * some departments have budget >= 10000 and must be filtered out.
    """
    catalog = Catalog()
    dept = catalog.create_table(
        "dept",
        Schema(
            [
                Column("name", SQLType.STR, nullable=False),
                Column("budget", SQLType.FLOAT),
                Column("num_emps", SQLType.INT),
                Column("building", SQLType.STR),
            ],
            primary_key=["name"],
        ),
    )
    emp = catalog.create_table(
        "emp",
        Schema(
            [
                Column("empno", SQLType.INT, nullable=False),
                Column("name", SQLType.STR),
                Column("building", SQLType.STR),
                Column("salary", SQLType.FLOAT),
            ],
            primary_key=["empno"],
        ),
    )
    dept.insert_many(
        [
            ("sales", 5000.0, 4, "B1"),
            ("support", 8000.0, 1, "B1"),
            ("research", 2000.0, 3, "B2"),
            ("ops", 9000.0, 2, "B2"),
            ("d_low", 500.0, 1, "B9"),      # building with no employees
            ("rich", 50000.0, 9, "B1"),     # filtered out by budget
            ("d_null", 700.0, None, "B2"),  # NULL num_emps
        ]
    )
    emp.insert_many(
        [
            (1, "alice", "B1", 100.0),
            (2, "bob", "B1", 120.0),
            (3, "carol", "B1", 90.0),
            (4, "dan", "B2", 80.0),
            (5, "erin", "B2", 95.0),
            (6, "frank", "B3", 70.0),
        ]
    )
    emp.create_index("emp_building", ["building"])
    return catalog
