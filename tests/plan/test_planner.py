"""Unit tests for the cost-based planner: access paths, join order,
correlated-subquery placement (paper section 7)."""

import pytest

from repro.errors import PlanError
from repro.plan.planner import (
    HashJoinStep,
    IndexLookupStep,
    PredicateStep,
    ScanStep,
    SubqueryEvalStep,
    plan_select_box,
)
from repro.qgm import build_qgm
from repro.qgm.expr import BoxScalarSubquery, walk_expr
from repro.qgm.model import SelectBox
from repro.sql.parser import parse_statement
from repro.storage import Catalog, Column, Schema
from repro.types import SQLType


@pytest.fixture
def catalog() -> Catalog:
    cat = Catalog()
    cat.create_table(
        "big",
        Schema(
            [Column("id", SQLType.INT, nullable=False),
             Column("k", SQLType.INT), Column("v", SQLType.INT)],
            primary_key=["id"],
        ),
    )
    cat.create_table(
        "small",
        Schema(
            [Column("id", SQLType.INT, nullable=False),
             Column("k", SQLType.INT)],
            primary_key=["id"],
        ),
    )
    big = cat.table("big")
    for i in range(500):
        big.insert((i, i % 50, i % 7))
    big.create_index("big_k", ["k"])
    small = cat.table("small")
    for i in range(10):
        small.insert((i, i))
    return cat


def plan_for(catalog, sql):
    graph = build_qgm(parse_statement(sql), catalog)
    box = graph.root
    assert isinstance(box, SelectBox)
    return plan_select_box(catalog, box)


def access_steps(plan):
    return [
        s for s in plan.steps
        if isinstance(s, (ScanStep, IndexLookupStep, HashJoinStep))
    ]


class TestAccessSelection:
    def test_literal_equality_uses_index(self, catalog):
        plan = plan_for(catalog, "SELECT v FROM big WHERE k = 3")
        steps = access_steps(plan)
        assert isinstance(steps[0], IndexLookupStep)
        assert steps[0].key_columns == ("k",)

    def test_no_index_never_uses_index_lookup(self, catalog):
        plan = plan_for(catalog, "SELECT k FROM big WHERE v = 3")
        steps = access_steps(plan)
        # Without an index the access is a scan or a hash filter against the
        # literal -- never an IndexLookupStep.
        assert not isinstance(steps[0], IndexLookupStep)

    def test_small_table_drives_join_into_index(self, catalog):
        plan = plan_for(
            catalog,
            "SELECT b.v FROM small s, big b WHERE s.k = b.k",
        )
        steps = access_steps(plan)
        # small scanned first, then an index lookup into big per small row.
        assert isinstance(steps[0], ScanStep)
        assert steps[0].quantifier.name == "s"
        assert isinstance(steps[1], IndexLookupStep)
        assert steps[1].quantifier.name == "b"

    def test_hash_join_without_index(self, catalog):
        plan = plan_for(
            catalog,
            "SELECT b.k FROM small s, big b WHERE s.id = b.v",
        )
        steps = access_steps(plan)
        kinds = [type(s) for s in steps]
        assert HashJoinStep in kinds

    def test_predicates_placed_at_earliest_barrier(self, catalog):
        plan = plan_for(
            catalog,
            "SELECT b.v FROM small s, big b WHERE s.k = b.k AND s.id > 2",
        )
        first_access = plan.steps.index(access_steps(plan)[0])
        filter_steps = [
            i for i, s in enumerate(plan.steps)
            if isinstance(s, PredicateStep)
            and "id" in repr(s.predicate)
        ]
        second_access = plan.steps.index(access_steps(plan)[1])
        assert filter_steps and filter_steps[0] < second_access

    def test_cross_join_plans(self, catalog):
        plan = plan_for(catalog, "SELECT 1 FROM small a, small b")
        assert len(access_steps(plan)) == 2

    def test_join_order_recorded(self, catalog):
        plan = plan_for(
            catalog, "SELECT b.v FROM small s, big b WHERE s.k = b.k"
        )
        assert [q.name for q in plan.join_order] == ["s", "b"]


class TestSubqueryPlacement:
    def test_scalar_placed_before_expensive_join(self, catalog):
        # The Query-2 situation: the subquery's bindings come from `small`,
        # the comparison also needs `big`; the value is computed per small
        # row *before* the join fans out.
        sql = """
            SELECT 1 FROM small s, big b
            WHERE s.k = b.k AND b.v <
              (SELECT count(*) FROM big i WHERE i.k = s.k)
        """
        plan = plan_for(catalog, sql)
        eval_positions = [
            i for i, s in enumerate(plan.steps)
            if isinstance(s, SubqueryEvalStep)
        ]
        assert len(eval_positions) == 1
        big_access = next(
            i for i, s in enumerate(plan.steps)
            if isinstance(s, (ScanStep, IndexLookupStep, HashJoinStep))
            and s.quantifier.name == "b"
        )
        assert eval_positions[0] < big_access
        # The comparison itself waits for b.
        pred_position = max(
            i for i, s in enumerate(plan.steps) if isinstance(s, PredicateStep)
        )
        assert pred_position > big_access

    def test_scalar_placement_recorded_for_rewriter(self, catalog):
        sql = """
            SELECT 1 FROM small s
            WHERE s.id > (SELECT avg(i.v) FROM big i WHERE i.k = s.k)
        """
        graph = build_qgm(parse_statement(sql), catalog)
        plan = plan_select_box(catalog, graph.root)
        nodes = [
            n for p in graph.root.predicates for n in walk_expr(p)
            if isinstance(n, BoxScalarSubquery)
        ]
        assert len(nodes) == 1
        assert plan.scalar_placement[id(nodes[0])] == 1  # right after s

    def test_uncorrelated_scalar_placed_at_barrier_zero(self, catalog):
        sql = """
            SELECT 1 FROM big b
            WHERE b.v > (SELECT avg(s.id) FROM small s)
        """
        graph = build_qgm(parse_statement(sql), catalog)
        plan = plan_select_box(catalog, graph.root)
        # One env row exists before any quantifier: cheapest placement.
        assert list(plan.scalar_placement.values()) == [0]


class TestCorrelatedChildren:
    def test_correlated_derived_table_ordered_after_source(self, catalog):
        sql = """
            SELECT s.id, dt.c FROM small s, DT(c) AS
              (SELECT count(*) FROM big b WHERE b.k = s.k)
        """
        plan = plan_for(catalog, sql)
        order = [q.name for q in plan.join_order]
        assert order.index("s") < order.index("dt")
        dt_step = access_steps(plan)[order.index("dt")]
        assert isinstance(dt_step, ScanStep) and dt_step.correlated_to_self

    def test_mutually_referencing_children_rejected(self, catalog):
        # Two derived tables each correlated to the other cannot be ordered.
        from repro.qgm.model import OutputColumn, SelectBox
        from repro.sql import ast

        inner1 = SelectBox(outputs=[OutputColumn("a", ast.Literal(1))])
        inner2 = SelectBox(outputs=[OutputColumn("b", ast.Literal(2))])
        outer = SelectBox()
        q1 = outer.add_quantifier(inner1, "d1")
        q2 = outer.add_quantifier(inner2, "d2")
        inner1.predicates.append(
            ast.Comparison("=", ast.Literal(1), q2.ref("b"))
        )
        inner2.predicates.append(
            ast.Comparison("=", ast.Literal(2), q1.ref("a"))
        )
        outer.outputs = [OutputColumn("x", ast.Literal(0))]
        with pytest.raises(PlanError):
            plan_select_box(catalog, outer)


class TestDPvsGreedy:
    def test_dp_finds_selective_first_order(self, catalog):
        # Three-way join where the greedy trap is starting from the tiny
        # relation and losing the index path; DP must order small -> big.
        sql = """
            SELECT b.v FROM big b, small s, small t
            WHERE s.k = b.k AND t.id = s.id
        """
        plan = plan_for(catalog, sql)
        order = [q.name for q in plan.join_order]
        assert order.index("b") == 2  # big joined last, via its index

    def test_many_quantifiers_fall_back_to_greedy(self, catalog):
        froms = ", ".join(f"small s{i}" for i in range(10))
        sql = f"SELECT 1 FROM {froms}"
        plan = plan_for(catalog, sql)
        assert len(access_steps(plan)) == 10
