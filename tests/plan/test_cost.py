"""Unit tests for cardinality and selectivity estimation."""

import pytest

from repro.plan.cost import (
    DEFAULT_EQ_SELECTIVITY,
    column_ndv,
    estimate_box_rows,
    predicate_selectivity,
)
from repro.qgm import build_qgm
from repro.qgm.model import GroupByBox
from repro.sql.parser import parse_statement
from repro.storage import Catalog, Column, Schema
from repro.types import SQLType


@pytest.fixture
def catalog() -> Catalog:
    cat = Catalog()
    cat.create_table(
        "t",
        Schema(
            [Column("id", SQLType.INT, nullable=False),
             Column("k", SQLType.INT), Column("s", SQLType.STR)],
            primary_key=["id"],
        ),
    )
    t = cat.table("t")
    for i in range(200):
        t.insert((i, i % 10, f"v{i % 4}"))
    return cat


def root_of(catalog, sql):
    return build_qgm(parse_statement(sql), catalog).root


class TestColumnNdv:
    def test_base_table_column(self, catalog):
        box = root_of(catalog, "SELECT k FROM t")
        ref = box.outputs[0].expr
        assert column_ndv(catalog, ref) == 10

    def test_chases_through_projections(self, catalog):
        box = root_of(
            catalog, "SELECT kk FROM (SELECT k AS kk FROM t) AS sub"
        )
        ref = box.outputs[0].expr
        assert column_ndv(catalog, ref) == 10

    def test_computed_column_unknown(self, catalog):
        box = root_of(
            catalog, "SELECT kk FROM (SELECT k + 1 AS kk FROM t) AS sub"
        )
        ref = box.outputs[0].expr
        assert column_ndv(catalog, ref) is None


class TestSelectivity:
    def pred_of(self, catalog, sql):
        return root_of(catalog, sql).predicates[0]

    def test_equality_uses_ndv(self, catalog):
        pred = self.pred_of(catalog, "SELECT 1 FROM t WHERE k = 3")
        assert predicate_selectivity(catalog, pred) == pytest.approx(0.1)

    def test_equality_without_stats_uses_default(self, catalog):
        pred = self.pred_of(catalog, "SELECT 1 FROM t WHERE 1 = 2")
        assert predicate_selectivity(catalog, pred) == DEFAULT_EQ_SELECTIVITY

    def test_range_predicate(self, catalog):
        pred = self.pred_of(catalog, "SELECT 1 FROM t WHERE k < 3")
        assert 0 < predicate_selectivity(catalog, pred) < 1

    def test_in_list_scales_with_alternatives(self, catalog):
        one = self.pred_of(catalog, "SELECT 1 FROM t WHERE k IN (1)")
        three = self.pred_of(catalog, "SELECT 1 FROM t WHERE k IN (1, 2, 3)")
        assert predicate_selectivity(catalog, three) == pytest.approx(
            3 * predicate_selectivity(catalog, one)
        )

    def test_or_adds_and_caps(self, catalog):
        pred = self.pred_of(
            catalog,
            "SELECT 1 FROM t WHERE k = 1 OR k = 2 OR s = 'v0' OR s < 'z' "
            "OR s > 'a' OR id > 0",
        )
        assert predicate_selectivity(catalog, pred) <= 1.0

    def test_and_multiplies(self, catalog):
        single = self.pred_of(catalog, "SELECT 1 FROM t WHERE k = 1")
        # one conjunct at a time -> builder flattens AND into two predicates,
        # so use a nested OR to keep a single expression
        both = root_of(catalog, "SELECT 1 FROM t WHERE k = 1 AND s = 'v0'")
        total = 1.0
        for p in both.predicates:
            total *= predicate_selectivity(catalog, p)
        assert total == pytest.approx(0.1 * 0.25)
        assert predicate_selectivity(catalog, single) == pytest.approx(0.1)


class TestBoxEstimates:
    def test_base_table(self, catalog):
        box = root_of(catalog, "SELECT id FROM t").quantifiers[0].box
        assert estimate_box_rows(catalog, box) == 200.0

    def test_filtered_select(self, catalog):
        box = root_of(catalog, "SELECT id FROM t WHERE k = 1")
        assert estimate_box_rows(catalog, box) == pytest.approx(20.0)

    def test_join_estimate(self, catalog):
        box = root_of(
            catalog, "SELECT 1 FROM t a, t b WHERE a.k = b.k"
        )
        estimate = estimate_box_rows(catalog, box)
        assert estimate == pytest.approx(200 * 200 / 10)

    def test_scalar_groupby_is_one(self, catalog):
        box = root_of(catalog, "SELECT count(*) FROM t")
        assert isinstance(box, GroupByBox)
        assert estimate_box_rows(catalog, box) == 1.0

    def test_grouped_estimate_uses_ndv(self, catalog):
        box = root_of(catalog, "SELECT k, count(*) FROM t GROUP BY k")
        assert estimate_box_rows(catalog, box) == pytest.approx(10.0)

    def test_union_sums(self, catalog):
        box = root_of(
            catalog, "SELECT id FROM t UNION ALL SELECT id FROM t"
        )
        assert estimate_box_rows(catalog, box) == pytest.approx(400.0)

    def test_estimates_never_below_one(self, catalog):
        box = root_of(
            catalog,
            "SELECT 1 FROM t WHERE k = 1 AND s = 'v0' AND id = 5 AND k = 2",
        )
        assert estimate_box_rows(catalog, box) >= 1.0

    def test_outer_join_at_least_preserved_side(self, catalog):
        box = root_of(
            catalog,
            "SELECT a.id FROM t a LEFT OUTER JOIN t b ON a.id = b.k",
        )
        oj = box.quantifiers[0].box
        assert estimate_box_rows(catalog, oj) >= 200.0
