"""Tests for physical-plan rendering and INSERT ... SELECT."""

import pytest

from repro import Database, Strategy


@pytest.fixture
def db(empdept_catalog) -> Database:
    return Database(empdept_catalog)


PAPER_QUERY = """
    SELECT d.name FROM dept d
    WHERE d.budget < 10000 AND d.num_emps >
      (SELECT count(*) FROM emp e WHERE d.building = e.building)
"""


class TestExplainPlan:
    def test_ni_plan_shows_per_row_subquery(self, db):
        text = db.explain_plan(PAPER_QUERY)
        assert "evaluate scalar subquery" in text
        assert "per row" in text
        assert "index lookup e via emp_building" in text

    def test_magic_plan_has_no_subquery_step(self, db):
        text = db.explain_plan(PAPER_QUERY, Strategy.MAGIC)
        assert "evaluate scalar subquery" not in text
        assert "HASH AGGREGATE" in text
        assert "LEFT OUTER" in text

    def test_correlated_derived_table_marked(self, db):
        text = db.explain_plan(
            "SELECT d.name, dt.c FROM dept d, DT(c) AS "
            "(SELECT count(*) FROM emp e WHERE e.building = d.building)"
        )
        assert "re-executed per row: correlated" in text

    def test_plain_query_plan(self, db):
        text = db.explain_plan(
            "SELECT d.name FROM dept d, emp e WHERE d.building = e.building"
        )
        assert "est." in text
        assert "TABLE dept" in text and "TABLE emp" in text

    def test_non_query_rejected(self, db):
        from repro.errors import BindError

        with pytest.raises(BindError):
            db.explain_plan("CREATE TABLE zz (a INT)")


class TestInsertSelect:
    def test_insert_from_query(self, db):
        db.execute_script(
            "CREATE TABLE archive (name TEXT, building TEXT)"
        )
        result = db.execute(
            "INSERT INTO archive SELECT name, building FROM dept "
            "WHERE budget < 1000"
        )
        assert result.metrics.rows_output == 2
        rows = sorted(db.execute("SELECT name FROM archive").rows)
        assert rows == [("d_low",), ("d_null",)]

    def test_insert_select_with_column_list(self, db):
        db.execute_script("CREATE TABLE names (n TEXT, extra INT)")
        db.execute("INSERT INTO names (n) SELECT name FROM emp")
        assert db.execute("SELECT count(*) FROM names").scalar() == 6
        assert db.execute(
            "SELECT count(*) FROM names WHERE extra IS NULL"
        ).scalar() == 6

    def test_insert_select_arity_mismatch(self, db):
        from repro.errors import BindError

        db.execute_script("CREATE TABLE one_col (a TEXT)")
        with pytest.raises(BindError):
            db.execute("INSERT INTO one_col SELECT name, building FROM dept")

    def test_insert_select_respects_constraints(self, db):
        from repro.errors import SchemaError

        db.execute_script("CREATE TABLE keyed (k TEXT PRIMARY KEY)")
        with pytest.raises(SchemaError):
            # duplicate buildings violate the primary key
            db.execute("INSERT INTO keyed SELECT building FROM dept")

    def test_insert_select_roundtrips_through_printer(self):
        from repro.sql.parser import parse_statement
        from repro.sql.printer import to_sql

        sql = "INSERT INTO t (a) SELECT x FROM u WHERE x > 1"
        parsed = parse_statement(sql)
        assert parse_statement(to_sql(parsed)) == parsed
