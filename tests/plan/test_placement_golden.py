"""Golden plan shapes: cost-based subquery placement on the paper's
TPC-D queries (section 7), pinned per strategy.

The interesting decision is *where* the planner parks a correlated
scalar subquery among the join barriers:

* Query 1's subquery (a three-way join probe) is expensive, so it runs
  last -- after ``p``, ``s`` and ``ps`` are all bound;
* Query 2's subquery depends only on ``p`` and is cheap (indexed), so it
  runs immediately after ``p`` binds, *before* the big ``lineitem``
  quantifier is even joined;
* Query 3's correlated table expression becomes a correlated scan, after
  the supplier quantifier that feeds it.

Quantifier names carry a global freshness counter, so shapes are
normalized (trailing digits stripped) to stay stable under any test
ordering."""

import re

import pytest

from repro.api.strategies import Strategy
from repro.plan.planner import (
    HashJoinStep,
    IndexLookupStep,
    PredicateStep,
    ScanStep,
    SubqueryEvalStep,
    plan_select_box,
)
from repro.qgm import build_qgm
from repro.qgm.analysis import iter_boxes
from repro.qgm.model import SelectBox
from repro.rewrite import RewriteEngine
from repro.sql.parser import parse_statement
from repro.tpcd import QUERY_1, QUERY_2, QUERY_3, load_tpcd


@pytest.fixture(scope="module")
def tpcd_catalog():
    return load_tpcd(scale_factor=0.01)


def _shape(plan):
    tokens = []
    for step in plan.steps:
        if isinstance(step, ScanStep):
            name = re.sub(r"\d+$", "", step.quantifier.name)
            tokens.append(
                f"scan:{name}+corr" if step.correlated_to_self
                else f"scan:{name}"
            )
        elif isinstance(step, IndexLookupStep):
            name = re.sub(r"\d+$", "", step.quantifier.name)
            tokens.append(f"index:{name}:{step.index_name}")
        elif isinstance(step, HashJoinStep):
            tokens.append("hash:" + re.sub(r"\d+$", "", step.quantifier.name))
        elif isinstance(step, PredicateStep):
            tokens.append("filter")
        elif isinstance(step, SubqueryEvalStep):
            tokens.append("subquery")
    return tokens


def _plans(catalog, sql, strategy):
    graph = build_qgm(parse_statement(sql), catalog)
    engine = RewriteEngine(catalog, validate=False)
    graph = engine.rewrite(graph, Strategy(strategy))
    shapes = {}
    for box in iter_boxes(graph.root):
        if isinstance(box, SelectBox):
            plan = plan_select_box(catalog, box)
            shapes[box] = (_shape(plan), box is graph.root)
    return shapes


def _root_shape(catalog, sql, strategy):
    shapes = _plans(catalog, sql, strategy)
    return next(s for s, is_root in shapes.values() if is_root)


def _subquery_shape(catalog, sql, strategy):
    shapes = _plans(catalog, sql, strategy)
    return next(s for s, _ in shapes.values() if "subquery" in s)


# -- Query 1: expensive subquery runs after every join -------------------------


def test_q1_ni_places_subquery_after_all_joins(tpcd_catalog):
    assert _root_shape(tpcd_catalog, QUERY_1, "ni") == [
        "index:s:s_nation_idx", "filter",
        "index:ps:ps_suppkey_idx", "filter",
        "index:p:parts_pkey", "filter",
        "filter", "filter",
        "subquery", "filter",
    ]


def test_q1_kim_decorrelates_into_hash_join(tpcd_catalog):
    shape = _root_shape(tpcd_catalog, QUERY_1, "kim")
    assert "subquery" not in shape
    assert "hash:kim" in shape


def test_q1_dayal_collapses_to_derived_scan(tpcd_catalog):
    assert _root_shape(tpcd_catalog, QUERY_1, "dayal") == [
        "scan:dtop", "filter",
    ]


def test_q1_magic_joins_supplementary_tables(tpcd_catalog):
    assert _root_shape(tpcd_catalog, QUERY_1, "magic") == [
        "scan:supp", "scan:dco", "filter", "filter",
    ]


# -- Query 2: cheap keyed subquery runs as early as its dependency allows -----


def test_q2_ni_places_subquery_before_lineitem_joins(tpcd_catalog):
    shape = _subquery_shape(tpcd_catalog, QUERY_2, "ni")
    assert shape == [
        "index:p:p_brand_idx", "filter", "filter",
        "subquery",
        "index:l:l_partkey_idx", "filter", "filter",
    ]
    # The pin that matters: the subquery depends only on p, and the cost
    # model schedules it before the (much larger) lineitem quantifier.
    assert shape.index("subquery") < shape.index("index:l:l_partkey_idx")


@pytest.mark.parametrize("strategy", ["kim", "dayal", "magic"])
def test_q2_decorrelated_strategies_have_no_subquery_step(
    tpcd_catalog, strategy
):
    shapes = _plans(tpcd_catalog, QUERY_2, strategy)
    assert all("subquery" not in s for s, _ in shapes.values())


# -- Query 3: non-linear query -> correlated scan, magic -> hash join ---------


def test_q3_ni_uses_correlated_scan_after_supplier(tpcd_catalog):
    assert _root_shape(tpcd_catalog, QUERY_3, "ni") == [
        "index:s:s_region_idx", "filter", "scan:dt+corr",
    ]


def test_q3_magic_replaces_correlated_scan_with_hash_join(tpcd_catalog):
    assert _root_shape(tpcd_catalog, QUERY_3, "magic") == [
        "scan:supp", "hash:dt", "filter",
    ]
