"""The fingerprint-keyed plan cache: normalization, rebinding, staleness.

Covers the PR-9 bugfixes (comment stripping, quoted-identifier and
escaped-quote parameter extraction), the cache's counting law (every
cacheable lookup is exactly one hit or miss; invalidations additional,
all reconciling exactly with the emitted ``plan.cache_*`` events), the
generation-stamp staleness contract, and the tombstoning of shapes whose
literals are consumed at build time (``LIMIT n``, ordinal ``ORDER BY``).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Database
from repro.errors import BindError, ExecutionError
from repro.obs.events import EventLog, RingSink, count_by_kind
from repro.plan.cache import (
    PlanCache,
    extract_parameters,
    fingerprint,
    normalize_sql,
    render_parameterized,
)
from repro.qgm import build_qgm
from repro.sql.parser import parse_statement
from repro.tpcd import load_empdept


@pytest.fixture()
def cache() -> PlanCache:
    return PlanCache()


@pytest.fixture()
def db(cache) -> Database:
    return Database(load_empdept(), plan_cache=cache)


@pytest.fixture()
def plain() -> Database:
    return Database(load_empdept())


# -- normalization and extraction (the satellite bugfixes) --------------------

class TestNormalization:
    def test_comment_twins_share_a_fingerprint(self):
        """Regression: ``--`` line comments are stripped before literal
        replacement; a commented query is the same shape as its twin."""
        plain_sql = "select name from emp where salary > 10"
        commented = (
            "select name  -- projected column\n"
            "from emp     -- the paper's section-2 table\n"
            "where salary > 10 -- a literal, not part of the comment\n"
        )
        assert normalize_sql(commented) == normalize_sql(plain_sql)
        assert fingerprint(commented) == fingerprint(plain_sql)

    def test_comment_text_never_leaks_literals(self):
        # A literal *inside* a comment must not become a parameter.
        sql = "select name from emp -- threshold was 99\nwhere salary > 5"
        extracted = extract_parameters(sql)
        assert [p.value for p in extracted.params] == [5]

    def test_literals_inside_quoted_identifiers_survive(self):
        """Regression: digits and quotes inside a quoted identifier are
        identifier content, never parameters."""
        sql = 'select "col5" from emp where salary > 7'
        extracted = extract_parameters(sql)
        assert [p.value for p in extracted.params] == [7]
        assert '"col5"' in extracted.template

    def test_escaped_quotes_do_not_terminate_strings(self):
        sql = "select name from emp where name = 'it''s' and salary > 2.5"
        extracted = extract_parameters(sql)
        assert [p.value for p in extracted.params] == ["it's", 2.5]

    def test_extraction_order_matches_marker_order(self):
        sql = "select 1, 'a', 2.5, 'b' from emp where salary > 3e1"
        extracted = extract_parameters(sql)
        assert [p.value for p in extracted.params] == [1, "a", 2.5, "b", 30.0]
        assert extracted.template.count("?") == 5

    def test_numbers_decode_like_the_lexer(self):
        values = [
            p.value for p in extract_parameters(
                "select 1, 1.5, .5, 2e3, 2E-1, 7 from emp"
            ).params
        ]
        assert values == [1, 1.5, 0.5, 2000.0, 0.2, 7]
        assert [type(v).__name__ for v in values] == [
            "int", "float", "float", "float", "float", "int",
        ]

    def test_malformed_input_is_flagged_not_cached(self):
        assert not extract_parameters("select 'unterminated").ok
        assert not extract_parameters('select "unterminated').ok

    def test_render_parameterized_splices_markers(self):
        sql = "select name from emp where name = 'it''s' and salary > 2.5"
        extracted = extract_parameters(sql)
        rendered = render_parameterized(sql, extracted)
        assert rendered == (
            "select name from emp where name = ? and salary > ?"
        )
        # The rendered text normalizes to the same template.
        assert normalize_sql(rendered) == extracted.template


# -- property: template + params re-render to an equivalent query -------------

_names = st.text(
    alphabet="ab'c", min_size=0, max_size=6
)


class TestRebindingProperty:
    @settings(max_examples=40, deadline=None)
    @given(
        low=st.integers(-5, 300),
        high=st.floats(0, 300, allow_nan=False, width=16),
        name=_names,
    )
    def test_cached_execution_equals_plain(self, low, high, name):
        """For arbitrary literal values (including quotes needing ``''``
        escapes), executing through the cache -- template fill once, then
        rebinding extracted values in exact ``?``-marker order -- returns
        the same rows as the plain pipeline."""
        catalog = getattr(self, "_catalog", None)
        if catalog is None:
            catalog = self._catalog = load_empdept()
        sql = (
            "select name, salary from emp "
            f"where salary > {low} and name <> '{name.replace(chr(39), chr(39) * 2)}' "
            f"and salary < {high!r} order by name"
        )
        cache = PlanCache()
        db = Database(catalog, plan_cache=cache)
        plain = Database(catalog)
        expected = plain.execute(sql).rows
        assert db.execute(sql).rows == expected  # miss + fill
        assert db.execute(sql).rows == expected  # hit, rebound
        assert cache.hits >= 1

    @settings(max_examples=40, deadline=None)
    @given(values=st.lists(st.integers(0, 250), min_size=2, max_size=2))
    def test_rebinding_uses_this_submissions_values(self, values):
        """A hit must bind the *current* literals, not the fill's."""
        catalog = getattr(self, "_catalog2", None)
        if catalog is None:
            catalog = self._catalog2 = load_empdept()
        cache = PlanCache()
        db = Database(catalog, plan_cache=cache)
        plain = Database(catalog)
        template = "select name from emp where salary > {} order by name"
        for value in values:
            assert (
                db.execute(template.format(value)).rows
                == plain.execute(template.format(value)).rows
            )


# -- the cache itself ----------------------------------------------------------

class TestPlanCache:
    def test_hit_miss_counters(self, db, cache):
        sql = "select name from emp where salary > {} order by name"
        db.execute(sql.format(50))
        db.execute(sql.format(60))
        db.execute(sql.format(70))
        snap = cache.snapshot()
        assert snap["misses"] == 1
        assert snap["hits"] == 2
        assert snap["entries"] == 1

    def test_key_separates_strategy_cse_and_types(self, db, cache):
        sql = "select name from emp where salary > 50"
        db.execute(sql, strategy="ni")
        db.execute(sql, strategy="magic")
        db.execute(sql, strategy="ni", cse_mode="materialize")
        db.execute("select name from emp where salary > 50.5")  # float param
        assert cache.snapshot()["entries"] == 4
        assert cache.snapshot()["hits"] == 0

    def test_in_list_arity_stays_in_the_shape(self, db, cache):
        db.execute("select name from emp where empno in (1, 2)")
        db.execute("select name from emp where empno in (3, 4, 5)")
        assert cache.snapshot()["misses"] == 2
        db.execute("select name from emp where empno in (8, 9)")
        assert cache.snapshot()["hits"] == 1

    def test_non_queries_and_malformed_bypass(self, db, cache):
        db.execute("insert into emp values (9001, 'x', 'b1', 1.0)")
        with pytest.raises(Exception):
            db.execute("select 'unterminated from emp")
        snap = cache.snapshot()
        assert snap["hits"] == snap["misses"] == 0

    def test_breaker_veto_bypasses_the_cache(self, db, cache):
        sql = "select name from emp where salary > 50"
        db.execute(
            sql, strategy="magic", fallback=True,
            disabled=lambda key: "quarantined" if key == "magic" else None,
        )
        assert cache.snapshot()["hits"] == cache.snapshot()["misses"] == 0

    def test_traced_queries_bypass_the_cache(self, db, cache):
        from repro.trace import Tracer

        db.execute("select name from emp where salary > 50", tracer=Tracer())
        assert cache.snapshot()["hits"] == cache.snapshot()["misses"] == 0

    def test_lru_eviction(self):
        catalog = load_empdept()
        cache = PlanCache(capacity=2)
        db = Database(catalog, plan_cache=cache)
        base = "select name from emp where salary > 1"
        shapes = [base + " and 1=1" * i for i in range(3)]
        for sql in shapes:
            db.execute(sql)
        assert cache.snapshot()["entries"] == 2
        db.execute(shapes[0])  # evicted -> a miss again
        assert cache.snapshot()["misses"] == 4
        assert cache.snapshot()["hits"] == 0

    def test_all_strategies_cached_rows_match_plain(self, plain):
        from repro.tpcd.queries import EMP_DEPT_QUERY

        for strategy in ("ni", "magic", "magic_opt", "kim", "dayal"):
            cache = PlanCache()
            db = Database(plain.catalog, plan_cache=cache)
            expected = plain.execute(EMP_DEPT_QUERY, strategy=strategy).rows
            db.execute(EMP_DEPT_QUERY, strategy=strategy)
            hit = db.execute(EMP_DEPT_QUERY, strategy=strategy)
            assert sorted(hit.rows) == sorted(expected), strategy
            assert cache.hits == 1, strategy


# -- staleness: the generation stamp -------------------------------------------

class TestInvalidation:
    def test_insert_invalidates(self, db, plain, cache):
        sql = "select name from emp where salary > 50 order by name"
        db.execute(sql)
        db.execute(sql)
        before = cache.snapshot()["invalidations"]
        db.execute("insert into emp values (9100, 'zz', 'b1', 500.0)")
        plain.execute("insert into emp values (9100, 'zz', 'b1', 500.0)")
        assert db.execute(sql).rows == plain.execute(sql).rows
        assert cache.snapshot()["invalidations"] == before + 1

    def test_ddl_invalidates(self, db, cache):
        sql = "select name from emp where salary > 50"
        db.execute(sql)
        db.execute("create table scratch (id int not null, primary key (id))")
        db.execute(sql)  # stale generation -> invalidation + miss
        snap = cache.snapshot()
        assert snap["invalidations"] == 1
        assert snap["misses"] == 2
        assert snap["hits"] == 0

    def test_index_ddl_invalidates(self, db, cache):
        """Index DDL goes through the table, not the catalog namespace;
        the facade must still bump the generation (access paths may have
        been planned against the old index set)."""
        sql = "select name from emp where building = 'b1'"
        db.execute(sql)
        db.execute("create index emp_b on emp (building)")
        db.execute(sql)
        assert cache.snapshot()["invalidations"] == 1
        db.execute("drop index emp_b on emp")
        db.execute(sql)
        assert cache.snapshot()["invalidations"] == 2

    def test_ddl_during_fill_self_invalidates(self, db, cache):
        """A fill that raced DDL carries a pre-DDL stamp: the next lookup
        must drop it rather than serve the stale artifact."""
        sql = "select name from emp where salary > 50"
        prepared = cache.prepare(
            sql, strategy="ni", cse_mode="recompute",
            decorrelate_existential=True,
            generation=db.catalog.generation(),
        )
        db.execute("insert into emp values (9200, 'r', 'b1', 60.0)")  # bumps
        cache.fill(prepared, db.catalog)  # stores the stale stamp
        db.execute(sql)
        snap = cache.snapshot()
        assert snap["invalidations"] == 1

    def test_store_keeps_newer_generation(self, db, cache):
        """A racing fill built against a newer catalog wins the store."""
        sql = "select name from emp where salary > 50"
        old = cache.prepare(
            sql, strategy="ni", cse_mode="recompute",
            decorrelate_existential=True,
            generation=db.catalog.generation(),
        )
        db.execute("insert into emp values (9300, 's', 'b1', 60.0)")
        new = cache.prepare(
            sql, strategy="ni", cse_mode="recompute",
            decorrelate_existential=True,
            generation=db.catalog.generation(),
        )
        cache.fill(new, db.catalog)
        cache.fill(old, db.catalog)  # must not clobber the newer entry
        entry = cache._entries[new.key]
        assert entry.generation == new.generation


# -- uncacheable shapes --------------------------------------------------------

class TestTombstones:
    def test_limit_shapes_tombstone_but_run_correctly(self, db, plain, cache):
        sql = "select name from emp order by name limit 2"
        first = db.execute(sql)
        second = db.execute(sql)
        expected = plain.execute(sql).rows
        assert first.rows == second.rows == expected
        snap = cache.snapshot()
        assert snap["hits"] == 0
        assert snap["misses"] == 2  # tombstoned, never a hit

    def test_ordinal_order_by_tombstones(self, db, plain, cache):
        sql = "select name, salary from emp order by 2"
        assert db.execute(sql).rows == plain.execute(sql).rows
        assert db.execute(sql).rows == plain.execute(sql).rows
        assert cache.snapshot()["hits"] == 0

    def test_second_miss_skips_the_refill(self, db, cache, monkeypatch):
        sql = "select name from emp order by name limit 2"
        db.execute(sql)  # tombstones

        def boom(*args, **kwargs):  # pragma: no cover - failure path
            raise AssertionError("tombstoned shape was re-filled")

        monkeypatch.setattr(cache, "fill", boom)
        db.execute(sql)

    def test_order_by_parameter_is_a_typed_bind_error(self, db):
        statement = parse_statement("select name from emp order by ?")
        with pytest.raises(BindError, match="ORDER BY position"):
            build_qgm(statement, db.catalog)

    def test_unbound_parameter_is_a_typed_execution_error(self, db):
        statement = parse_statement("select name from emp where salary > ?")
        graph = build_qgm(statement, db.catalog)
        from repro.exec import execute_graph

        with pytest.raises(ExecutionError, match="unbound parameter"):
            execute_graph(graph, db.catalog)


# -- events: the counting law --------------------------------------------------

class TestEvents:
    def test_counters_reconcile_exactly_with_events(self):
        sink = RingSink(capacity=65536)
        events = EventLog(sink)
        cache = PlanCache(events=events)
        db = Database(load_empdept(), plan_cache=cache, events=events)
        sql = "select name from emp where salary > {} order by name"
        for i in range(12):
            db.execute(sql.format(40 + i))
        db.execute("insert into emp values (9400, 'e', 'b1', 70.0)")
        for i in range(5):
            db.execute(sql.format(40 + i))
        db.execute("select name from emp order by name limit 1")  # tombstone
        db.execute("select name from emp order by name limit 1")
        counts = count_by_kind(sink.events())
        snap = cache.snapshot()
        assert counts.get("plan.cache_hit", 0) == snap["hits"]
        assert counts.get("plan.cache_miss", 0) == snap["misses"]
        assert counts.get("plan.cache_invalidated", 0) == snap["invalidations"]
        # Every cacheable lookup is exactly one hit or miss.
        assert snap["hits"] + snap["misses"] == 12 + 5 + 2

    def test_event_kinds_are_registered(self):
        from repro.obs.events import EVENT_KINDS

        for kind in (
            "plan.cache_hit", "plan.cache_miss", "plan.cache_invalidated",
        ):
            assert kind in EVENT_KINDS
