"""QueryService: admission control, deadlines, cancellation, stats."""

import threading

import pytest

from repro import Database, FaultRegistry, Limits, QueryService, Strategy
from repro.errors import (
    AdmissionRejected,
    BudgetExceeded,
    QueryCancelled,
)
from repro.tpcd import EMP_DEPT_QUERY

#: EMP/DEPT reference answer (see tests/conftest.py for the data).
EXPECTED = [("d_low",), ("research",), ("sales",)]


class Gate(FaultRegistry):
    """A registry whose ``storage.scan`` trigger blocks until released.

    Deterministic way to wedge a worker mid-query: the executing query
    parks inside its first table scan (``started`` set), every later
    submission queues behind it, and ``release`` lets everything proceed.
    """

    def __init__(self):
        super().__init__(0, ())
        self.started = threading.Event()
        self.release = threading.Event()

    def trigger(self, site: str, detail: str = "") -> None:
        if site == "storage.scan":
            self.started.set()
            assert self.release.wait(30), "gate never released"


@pytest.fixture
def gate() -> Gate:
    return Gate()


@pytest.fixture
def gated_db(empdept_catalog, gate) -> Database:
    return Database(empdept_catalog, faults=gate)


class TestBasics:
    def test_result_matches_direct_execution(self, db):
        with QueryService(db, workers=2) as service:
            ticket = service.submit(EMP_DEPT_QUERY, strategy=Strategy.MAGIC)
            result = ticket.result(timeout=30)
        assert sorted(result.rows) == EXPECTED
        assert ticket.state == "completed"
        assert ticket.latency is not None

    def test_many_concurrent_queries_all_answer(self, db):
        with QueryService(db, workers=4, max_queue=100) as service:
            tickets = [
                service.submit(EMP_DEPT_QUERY, strategy=s)
                for _ in range(10)
                for s in (Strategy.NESTED_ITERATION, Strategy.MAGIC)
            ]
            for ticket in tickets:
                assert sorted(ticket.result(timeout=30).rows) == EXPECTED
        stats = service.stats()
        assert stats.completed == 20
        assert stats.reconciles()

    def test_strategy_accepts_enum_and_string(self, db):
        with QueryService(db, workers=1) as service:
            a = service.submit(EMP_DEPT_QUERY, strategy="magic")
            b = service.submit(EMP_DEPT_QUERY, strategy=Strategy.MAGIC)
            assert a.result(30).rows == b.result(30).rows


class TestAdmissionControl:
    def test_queue_overflow_raises_typed_error(self, gated_db, gate):
        service = QueryService(gated_db, workers=1, max_queue=2)
        try:
            service.submit(EMP_DEPT_QUERY)   # wedges the only worker
            assert gate.started.wait(30)     # ... confirmed mid-scan
            service.submit(EMP_DEPT_QUERY)   # queue slot 1
            service.submit(EMP_DEPT_QUERY)   # queue slot 2
            with pytest.raises(AdmissionRejected) as info:
                service.submit(EMP_DEPT_QUERY)
            error = info.value
            assert error.reason == "queue full"
            assert error.queue_depth == 2
            assert error.max_queue == 2
            assert error.in_flight == 1
            assert "2/2" in str(error)
        finally:
            gate.release.set()
            service.close(drain=True, timeout=30)
        stats = service.stats()
        assert stats.rejected == 1
        assert stats.submitted == 4
        assert stats.completed == 3
        assert stats.reconciles()

    def test_closed_service_rejects(self, db):
        service = QueryService(db, workers=1)
        service.close()
        with pytest.raises(AdmissionRejected) as info:
            service.submit(EMP_DEPT_QUERY)
        assert info.value.reason == "service closed"
        assert service.stats().reconciles()

    def test_zero_queue_means_workers_only(self, gated_db, gate):
        service = QueryService(gated_db, workers=1, max_queue=0)
        try:
            service.submit(EMP_DEPT_QUERY)
            assert gate.started.wait(30)
            with pytest.raises(AdmissionRejected):
                service.submit(EMP_DEPT_QUERY)
        finally:
            gate.release.set()
            service.close(drain=True, timeout=30)
        assert service.stats().reconciles()


class ArmableGate(FaultRegistry):
    """Like :class:`Gate`, but only wedges once ``armed`` -- so a query
    can complete first (seeding the latency EMA) before the worker jams."""

    def __init__(self):
        super().__init__(0, ())
        self.armed = False
        self.started = threading.Event()
        self.release = threading.Event()

    def trigger(self, site: str, detail: str = "") -> None:
        if site == "storage.scan" and self.armed:
            self.started.set()
            assert self.release.wait(30), "gate never released"


class TestRetryAfterHint:
    def test_no_hint_before_any_completion(self, gated_db, gate):
        # The first rejection of a cold service has no latency estimate to
        # offer: the hint is absent, not a made-up number.
        service = QueryService(gated_db, workers=1, max_queue=0)
        try:
            service.submit(EMP_DEPT_QUERY)
            assert gate.started.wait(30)
            with pytest.raises(AdmissionRejected) as info:
                service.submit(EMP_DEPT_QUERY)
            assert info.value.retry_after_hint is None
            assert "retry after" not in str(info.value)
        finally:
            gate.release.set()
            service.close(drain=True, timeout=30)
        stats = service.stats()
        assert stats.rejected == 1
        assert stats.rejected_with_hint == 0
        assert stats.reconciles()

    def test_hint_present_after_completions(self, empdept_catalog):
        gate = ArmableGate()
        db = Database(empdept_catalog, faults=gate)
        service = QueryService(db, workers=1, max_queue=1)
        try:
            # Seed the EMA with one completed query, then jam the worker.
            service.submit(EMP_DEPT_QUERY).result(timeout=30)
            gate.armed = True
            service.submit(EMP_DEPT_QUERY)   # wedges the only worker
            assert gate.started.wait(30)
            service.submit(EMP_DEPT_QUERY)   # fills the single queue slot
            with pytest.raises(AdmissionRejected) as info:
                service.submit(EMP_DEPT_QUERY)
            hint = info.value.retry_after_hint
            assert hint is not None and hint > 0
            assert "retry after ~" in str(info.value)
        finally:
            gate.release.set()
            service.close(drain=True, timeout=30)
        stats = service.stats()
        assert stats.rejected == 1
        assert stats.rejected_with_hint == 1
        assert stats.as_dict()["rejected_with_hint"] == 1
        assert "repro_queries_rejected_with_hint_total 1" in (
            stats.export("prometheus")
        )
        assert stats.reconciles()


class TestDeadlines:
    def test_deadline_expired_while_queued_trips_immediately(
        self, gated_db, gate
    ):
        # The doomed query's deadline expires while it waits behind the
        # wedged worker; the worker's pre-execution check must trip it
        # without running anything (zero work in the metrics snapshot).
        service = QueryService(gated_db, workers=1, max_queue=4)
        try:
            service.submit(EMP_DEPT_QUERY)
            assert gate.started.wait(30)
            doomed = service.submit(EMP_DEPT_QUERY, deadline=0.0)
            gate.release.set()
            with pytest.raises(BudgetExceeded) as info:
                doomed.result(timeout=30)
            assert info.value.budget == "timeout"
        finally:
            gate.release.set()
            service.close(drain=True, timeout=30)
        assert service.stats().failed == 1
        assert service.stats().reconciles()

    def test_default_deadline_applies(self, db):
        with QueryService(db, workers=1, default_deadline=0.0) as service:
            ticket = service.submit(EMP_DEPT_QUERY)
            with pytest.raises(BudgetExceeded):
                ticket.result(timeout=30)

    def test_limits_merge_with_deadline(self):
        merged = QueryService._merge_limits(
            Limits(timeout=5.0, max_rows_scanned=10), 1.0
        )
        assert merged.timeout == 1.0
        assert merged.max_rows_scanned == 10
        merged = QueryService._merge_limits(Limits(timeout=0.5), 1.0)
        assert merged.timeout == 0.5
        merged = QueryService._merge_limits(None, 2.0)
        assert merged.timeout == 2.0
        merged = QueryService._merge_limits(Limits(max_rows_scanned=7), None)
        assert merged.timeout is None
        assert merged.max_rows_scanned == 7


class TestCancellation:
    def test_cancel_queued_query(self, gated_db, gate):
        service = QueryService(gated_db, workers=1, max_queue=4)
        try:
            service.submit(EMP_DEPT_QUERY)
            assert gate.started.wait(30)
            victim = service.submit(EMP_DEPT_QUERY)
            assert service.cancel(victim.query_id)
            gate.release.set()
            with pytest.raises(QueryCancelled) as info:
                victim.result(timeout=30)
            assert info.value.metrics is not None
        finally:
            gate.release.set()
            service.close(drain=True, timeout=30)
        stats = service.stats()
        assert stats.cancelled == 1
        assert stats.reconciles()

    def test_cancel_running_query_by_id(self, gated_db, gate):
        # Cross-thread cancel of a query that is mid-scan: the cancel flag
        # is observed at the next guard check, within one executor step.
        service = QueryService(gated_db, workers=1)
        try:
            ticket = service.submit(EMP_DEPT_QUERY)
            assert gate.started.wait(30)          # wedged inside the scan
            assert service.cancel(ticket.query_id)
            gate.release.set()
            with pytest.raises(QueryCancelled):
                ticket.result(timeout=30)
        finally:
            gate.release.set()
            service.close(drain=True, timeout=30)
        assert service.stats().cancelled == 1

    def test_cancel_unknown_or_finished_returns_false(self, db):
        with QueryService(db, workers=1) as service:
            ticket = service.submit(EMP_DEPT_QUERY)
            ticket.result(timeout=30)
            assert not service.cancel(ticket.query_id)
            assert not service.cancel(99999)

    def test_close_without_drain_cancels_queued(self, gated_db, gate):
        service = QueryService(gated_db, workers=1, max_queue=8)
        service.submit(EMP_DEPT_QUERY)
        assert gate.started.wait(30)
        victims = [service.submit(EMP_DEPT_QUERY) for _ in range(3)]
        gate.release.set()
        service.close(drain=False, timeout=30)
        for victim in victims:
            assert victim.done
            assert isinstance(victim.error(), QueryCancelled)
        assert service.stats().reconciles()


class TestStats:
    def test_reconciliation_after_mixed_outcomes(self, db):
        with QueryService(db, workers=2, max_queue=50) as service:
            tickets = [service.submit(EMP_DEPT_QUERY) for _ in range(6)]
            tickets.append(service.submit(EMP_DEPT_QUERY, deadline=0.0))
            for ticket in tickets:
                ticket.wait(30)
        stats = service.stats()
        assert stats.submitted == 7
        assert stats.completed + stats.failed == 7
        assert stats.reconciles()
        assert stats.latency_p50_ms is not None
        assert stats.latency_p95_ms >= stats.latency_p50_ms

    def test_per_worker_fault_scope_replicates_registry(self, empdept_catalog):
        registry = FaultRegistry.parse("5:exec.join=0")
        base = Database(empdept_catalog, faults=registry)
        with QueryService(base, workers=2, fault_scope="worker") as service:
            for _ in range(4):
                service.submit(EMP_DEPT_QUERY).result(timeout=30)
        # Worker replicas were used: the base registry's per-site trigger
        # counters never moved.
        assert registry._counts == {}

    def test_shared_fault_scope_uses_base_registry(self, empdept_catalog):
        registry = FaultRegistry.parse("5:exec.join=0")
        base = Database(empdept_catalog, faults=registry)
        with QueryService(base, workers=2, fault_scope="shared") as service:
            for _ in range(4):
                service.submit(EMP_DEPT_QUERY).result(timeout=30)
        assert registry._counts  # the shared schedule advanced

    def test_bad_configuration_rejected(self, db):
        with pytest.raises(ValueError):
            QueryService(db, workers=0)
        with pytest.raises(ValueError):
            QueryService(db, max_queue=-1)
        with pytest.raises(ValueError):
            QueryService(db, fault_scope="bogus")


class SteppingClock:
    """A fake monotonic clock that leaps forward on every read -- any
    code path still timing itself on ``time.monotonic`` instead of the
    injected clock shows up as a real-time stall."""

    def __init__(self, step: float = 10.0):
        self.now = 0.0
        self.step = step

    def __call__(self) -> float:
        value = self.now
        self.now += self.step
        return value


class TestDrainClock:
    def test_drain_deadline_runs_on_the_injected_clock(self, gated_db, gate):
        """Regression: ``drain`` used to call ``time.monotonic()``
        directly, so a fake-clock service measured its drain timeout in
        real seconds. With a clock that leaps 10s per read, a 5s drain
        deadline must expire on the *fake* timebase (immediately), not
        after 5 real seconds."""
        import time as _time

        clock = SteppingClock(step=10.0)
        service = QueryService(gated_db, workers=1, clock=clock)
        try:
            service.submit(EMP_DEPT_QUERY)   # wedges the only worker
            assert gate.started.wait(30)
            start = _time.perf_counter()
            assert service.drain(timeout=5.0) is False
            assert _time.perf_counter() - start < 2.0
        finally:
            gate.release.set()
            service.close(drain=True, timeout=30)

    def test_drain_with_frozen_clock_never_expires(self, gated_db, gate):
        """The mirror image: on a frozen fake clock the deadline never
        arrives, so drain waits for idleness and reports True."""
        service = QueryService(gated_db, workers=1, clock=lambda: 100.0)
        try:
            service.submit(EMP_DEPT_QUERY)
            assert gate.started.wait(30)
            releaser = threading.Timer(0.1, gate.release.set)
            releaser.start()
            assert service.drain(timeout=5.0) is True
        finally:
            gate.release.set()
            service.close(drain=True, timeout=30)


class TestTracing:
    def test_trace_ring_is_bounded_and_newest_last(self, db):
        with QueryService(db, workers=1, trace=True,
                          trace_history=2) as service:
            tickets = [
                service.submit(EMP_DEPT_QUERY, strategy="magic")
                for _ in range(3)
            ]
            for ticket in tickets:
                ticket.result(timeout=30)
        traces = service.recent_traces()
        assert len(traces) == 2  # the oldest summary was evicted
        assert [t["query_id"] for t in traces] == [
            tickets[1].query_id, tickets[2].query_id
        ]
        for summary in traces:
            assert summary["outcome"] == "completed"
            assert summary["strategy"] == "magic"
            assert summary["sql"] == EMP_DEPT_QUERY
            assert summary["latency_ms"] >= 0
            assert summary["metrics"]["total_work"] > 0
            assert summary["operators"], "per-operator breakdown missing"
            assert len(summary["operators"]) <= 8

    def test_failed_queries_are_traced_too(self, db):
        with QueryService(db, workers=1, trace=True) as service:
            ticket = service.submit(EMP_DEPT_QUERY, deadline=0.0)
            ticket.wait(30)
        (summary,) = service.recent_traces()
        assert summary["outcome"] == "failed"

    def test_untraced_service_keeps_no_history(self, db):
        with QueryService(db, workers=1) as service:
            service.submit(EMP_DEPT_QUERY).result(timeout=30)
        assert service.recent_traces() == []
        assert service.stats().recent_traces == []

    def test_trace_history_must_be_positive(self, db):
        with pytest.raises(ValueError):
            QueryService(db, trace_history=0)


class TestStatsExport:
    @pytest.fixture
    def drained(self, db):
        with QueryService(db, workers=2, trace=True) as service:
            for _ in range(3):
                service.submit(EMP_DEPT_QUERY, strategy="magic")
            service.drain(timeout=30)
            yield service

    def test_histograms_cover_every_observation(self, drained):
        stats = drained.stats()
        hist = stats.latency_histogram
        assert hist["count"] == 3
        assert list(hist["buckets"]) == sorted(hist["buckets"])
        # Cumulative: monotone non-decreasing, last bound <= count.
        counts = list(hist["buckets"].values())
        assert counts == sorted(counts)
        assert counts[-1] <= hist["count"]
        depth = stats.queue_depth_histogram
        assert depth["count"] == 3

    def test_json_export_round_trips(self, drained):
        import json

        payload = json.loads(drained.stats().export("json"))
        assert payload["completed"] == 3
        assert payload["latency_histogram"]["count"] == 3
        assert len(payload["recent_traces"]) == 3

    def test_prometheus_export_format(self, drained):
        text = drained.stats().export("prometheus")
        assert "# TYPE repro_queries_completed_total counter" in text
        assert "repro_queries_completed_total 3" in text
        assert "# TYPE repro_in_flight gauge" in text
        assert "# TYPE repro_query_latency_seconds histogram" in text
        assert 'repro_query_latency_seconds_bucket{le="+Inf"} 3' in text
        assert "repro_query_latency_seconds_count 3" in text
        assert 'repro_breaker_open{strategy="magic"} 0' in text
        assert text.endswith("\n")

    def test_unknown_export_format_rejected(self, drained):
        with pytest.raises(ValueError):
            drained.stats().export("xml")
