"""Plan-cached executions racing DML/DDL: never a stale answer.

The cache stores rewrite artifacts, not rows -- but a plan built against
one catalog generation must not survive into the next.  These tests
hammer cached executions from many threads while writers insert and run
index DDL, asserting the §9 freshness contract: an execution started
after a mutation completes reflects that mutation, every failure is a
typed :class:`~repro.errors.ReproError`, and the hit/miss/invalidation
counters still reconcile exactly with the emitted ``plan.cache_*``
events afterwards.
"""

import threading

from repro import Database, QueryService
from repro.errors import ReproError
from repro.obs.events import EventLog, RingSink, count_by_kind
from repro.plan.cache import PlanCache
from repro.tpcd import load_empdept

#: One shape, many literals -- every thread shares the cached template.
TEMPLATE = "select empno, name from emp where salary >= {} order by empno"


def _run_threads(n: int, target) -> list:
    barrier = threading.Barrier(n)
    results: list = [None] * n

    def wrapper(i: int) -> None:
        barrier.wait()
        try:
            results[i] = target(i)
        except Exception as exc:  # noqa: BLE001 - collected for assertions
            results[i] = exc

    threads = [
        threading.Thread(target=wrapper, args=(i,)) for i in range(n)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(60)
        assert not t.is_alive(), "plan-cached execution wedged"
    return results


class TestInsertRaces:
    def test_read_after_insert_always_sees_the_row(self):
        """Writers insert a row then immediately re-run the shared cached
        template: the execution *started after the insert returned* must
        include the new row, however the readers' hits and refills
        interleave with the invalidation."""
        sink = RingSink(capacity=262144)
        events = EventLog(sink)
        cache = PlanCache(events=events)
        db = Database(load_empdept(), plan_cache=cache, events=events)
        db.execute(TEMPLATE.format(0))  # prime the template

        def work(i: int) -> None:
            if i < 2:  # writers
                for k in range(20):
                    empno = 90000 + i * 1000 + k
                    db.execute(
                        f"insert into emp values ({empno}, 'w', 'b1', 60.0)"
                    )
                    rows = db.execute(TEMPLATE.format(0)).rows
                    assert (empno, "w") in rows, "stale read after insert"
            else:  # readers: cache hits on rotating literals
                for k in range(60):
                    db.execute(TEMPLATE.format((k % 4) * 50))

        results = _run_threads(8, work)
        assert not any(isinstance(r, Exception) for r in results), results
        counts = count_by_kind(sink.events())
        snap = cache.snapshot()
        assert counts.get("plan.cache_hit", 0) == snap["hits"]
        assert counts.get("plan.cache_miss", 0) == snap["misses"]
        assert (
            counts.get("plan.cache_invalidated", 0) == snap["invalidations"]
        )
        # 40 inserts, each bumping the generation: at least one later
        # lookup per bump noticed (racing lookups may batch onto one).
        assert snap["invalidations"] >= 1
        assert snap["hits"] >= 1

    def test_index_ddl_racing_cached_reads_stays_typed(self):
        """Index create/drop churns the generation while readers hammer
        the cached shape: every outcome is correct rows or a typed
        ``ReproError`` -- never a stale plan against a vanished index,
        never an untyped crash."""
        cache = PlanCache()
        db = Database(load_empdept(), plan_cache=cache)
        sql = "select name from emp where building = 'b1' order by name"
        expected = db.execute(sql).rows

        def work(i: int) -> None:
            if i == 0:  # DDL churn
                for k in range(15):
                    db.execute("create index emp_bldg on emp (building)")
                    db.execute("drop index emp_bldg on emp")
                return
            for _ in range(40):
                try:
                    assert db.execute(sql).rows == expected
                except ReproError:
                    pass  # typed failures are allowed under DDL races

        results = _run_threads(6, work)
        assert not any(isinstance(r, Exception) for r in results), results
        assert cache.snapshot()["invalidations"] >= 1


class TestCachedService:
    def test_service_stats_reconcile_under_load(self):
        """The shared cache behind ``QueryService`` workers: concurrent
        submissions over a handful of literals hit the same entries, and
        :meth:`QueryService.stats` surfaces counters that reconcile with
        the cache's own snapshot."""
        cache = PlanCache()
        db = Database(load_empdept())
        with QueryService(
            db, workers=4, max_queue=100, plan_cache=cache
        ) as service:
            tickets = [
                service.submit(TEMPLATE.format((i % 5) * 25), deadline=30.0)
                for i in range(40)
            ]
            for ticket in tickets:
                assert ticket.result(timeout=30) is not None
            stats = service.stats()
        snap = cache.snapshot()
        assert stats.plan_cache_hits == snap["hits"]
        assert stats.plan_cache_misses == snap["misses"]
        assert stats.plan_cache_invalidations == snap["invalidations"]
        assert stats.plan_cache == snap
        # 40 submissions over 5 literals of one shape: one miss per
        # racing first-touch at worst, hits for the long tail.
        assert snap["hits"] + snap["misses"] == 40
        assert snap["hits"] >= 30
