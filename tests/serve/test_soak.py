"""Short, seeded chaos soaks (the CI job runs the long ones)."""

import json

import pytest

from repro.serve.soak import (
    WORKLOAD,
    OverloadPhase,
    build_soak_catalog,
    compute_references,
    overload_schedule,
    run_overload_soak,
    run_soak,
    run_worker_soak,
)


@pytest.mark.slow
class TestSoak:
    def test_chaos_soak_holds_the_invariant(self):
        # Faults + cancels + tight deadlines for ~1.5 s: every query must
        # produce the reference answer or a typed error, and the service
        # counters must reconcile.
        report = run_soak(
            workers=4,
            seconds=1.5,
            seed=7,
            faults="7:storage.scan=0.002,exec.join=0.005,rewrite.strategy=0.1",
            scale=0.002,
            cancel_rate=0.1,
            tight_deadline_rate=0.2,
            breaker_threshold=2,
            breaker_cooldown=0.2,
        )
        assert report.ok, [str(v) for v in report.violations]
        assert report.stats.reconciles()
        assert report.checked_answers > 0
        assert report.stats.submitted > 0
        json.dumps(report.as_dict())  # the CLI --json payload serialises

    def test_worker_fault_scope_soak(self):
        report = run_soak(
            workers=2,
            seconds=1.0,
            seed=11,
            faults="11:exec.group=0.01",
            scale=0.002,
            cancel_rate=0.0,
            tight_deadline_rate=0.0,
            fault_scope="worker",
        )
        assert report.ok, [str(v) for v in report.violations]
        assert report.stats.completed > 0


@pytest.mark.slow
class TestWorkerSoak:
    def test_kill_per_epoch_holds_the_invariant(self):
        # One worker SIGKILLed per epoch plus injected crashes: every
        # epoch must end in the reference answer (directly or degraded)
        # or a typed error, and the worker.* events must reconcile with
        # the pool counters.
        report = run_worker_soak(
            epochs=2, n_workers=3, seed=11,
            faults="11:worker.crash=0.05",
            n_depts=12, n_emps=60,
        )
        assert report.ok, [str(v) for v in report.violations]
        assert report.kills == 2
        assert report.workers_lost >= report.kills
        assert report.event_counts["worker.lost"] == report.workers_lost
        assert report.event_counts["worker.spawned"] == 2 * 3
        json.dumps(report.as_dict())  # the CLI --json payload serialises

    def test_no_kill_fault_free_runs_clean(self):
        report = run_worker_soak(
            epochs=2, n_workers=2, seed=3,
            kill_per_epoch=False, n_depts=12, n_emps=60,
        )
        assert report.ok
        assert report.kills == 0 and report.workers_lost == 0
        assert report.outcomes == {"ok": 2}


class TestOverloadSchedule:
    def test_schedule_is_a_pure_function_of_phases_and_seed(self):
        phases = (OverloadPhase("burst", 1.0, 100.0),)
        first = overload_schedule(phases, seed=9)
        second = overload_schedule(phases, seed=9)
        assert first == second                      # replayable
        assert first != overload_schedule(phases, seed=10)
        assert all(a.offset <= 1.0 for a in first)
        assert all(a.deadline > 0 for a in first)

    def test_bad_phase_rejected(self):
        with pytest.raises(ValueError):
            overload_schedule((OverloadPhase("empty", 0.0, 10.0),))


@pytest.mark.slow
class TestOverloadSoak:
    def test_short_phased_soak_reconciles_on_both_sides(self):
        # A compressed phase plan (the CI job runs the real one): both
        # sides must answer correctly and reconcile; the win requirement
        # is off because a ~2 s run is too noisy to gate on.
        report = run_overload_soak(
            seed=13,
            workers=2,
            max_queue=8,
            scale=0.002,
            phases=(
                OverloadPhase("warmup", 0.6, 40.0),
                OverloadPhase("overload", 1.0, 250.0),
                OverloadPhase("recovery", 0.4, 20.0),
            ),
            require_win=False,
        )
        assert report.adaptive.violations == []
        assert report.fifo.violations == []
        assert report.adaptive.offered == report.fifo.offered
        assert report.adaptive.stats.reconciles()
        assert report.fifo.stats.reconciles()
        # The FIFO baseline has no overload machinery at all.
        assert report.fifo.stats.shed == 0
        assert report.fifo.stats.expired_in_queue == 0
        json.dumps(report.as_dict())  # the CLI --json payload serialises


class TestReferences:
    def test_references_cover_the_whole_workload(self):
        catalog = build_soak_catalog(scale=0.002)
        references = compute_references(catalog)
        for name, (_, strategies) in WORKLOAD.items():
            for strategy in strategies:
                assert (name, strategy) in references

    def test_workload_exercises_the_count_bug_divergence(self):
        # The dept table ships an employee-free building, so Kim's
        # COUNT-bug answer must differ from nested iteration on the
        # EMP/DEPT query -- the soak checks per-strategy references
        # precisely because of this designed divergence.
        catalog = build_soak_catalog(scale=0.002)
        references = compute_references(catalog)
        kind_ni, rows_ni = references[("empdept", "ni")]
        kind_kim, rows_kim = references[("empdept", "kim")]
        assert kind_ni == kind_kim == "rows"
        assert rows_ni != rows_kim
