"""Adaptive overload control: estimator, governor, brownout, service.

The unit half exercises the primitives in ``repro.serve.overload`` on
explicit fake clocks; the integration half drives a real
:class:`~repro.serve.QueryService` with gated workers and a settable
clock, so every overload decision (eager expiry, priority shedding,
futility rejection, retry-storm gating, the brownout ladder and the
``retry_after_hint`` arithmetic) is observed through public behaviour.
"""

import threading

import pytest

from repro import Database, FaultRegistry, Limits, QueryService
from repro.errors import AdmissionRejected, BudgetExceeded, QueryShed
from repro.guard import ExecutionGuard
from repro.obs import EventLog, RingSink
from repro.serve.overload import (
    BROWNOUT_RUNGS,
    BrownoutController,
    OverloadConfig,
    RetryGovernor,
    ServiceTimeEstimator,
    TokenBucket,
    fingerprint,
    normalize_sql,
    priority_rank,
)
from repro.tpcd import EMP_DEPT_QUERY

#: EMP/DEPT reference answer (see tests/conftest.py for the data).
EXPECTED = [("d_low",), ("research",), ("sales",)]


# -- fakes and gates ----------------------------------------------------------

class SettableClock:
    """A fake monotonic clock advanced only by explicit ``advance``
    calls -- time passes exactly when the test says it does."""

    def __init__(self, now: float = 0.0):
        self.now = now

    def advance(self, dt: float) -> None:
        self.now += dt

    def __call__(self) -> float:
        return self.now


class Gate(FaultRegistry):
    """Parks the executing query inside its first table scan until
    released (same shape as the service suite's gate)."""

    def __init__(self):
        super().__init__(0, ())
        self.started = threading.Event()
        self.release = threading.Event()

    def trigger(self, site: str, detail: str = "") -> None:
        if site == "storage.scan":
            self.started.set()
            assert self.release.wait(30), "gate never released"


class ScanGate(FaultRegistry):
    """Parks the worker at *every* ``storage.scan`` while armed.

    The test releases scans one handshake at a time and advances the
    fake clock while the worker is parked, so each query's measured
    execution time is an exact, chosen number of fake seconds.
    """

    def __init__(self):
        super().__init__(0, ())
        self.armed = False
        self.parked = threading.Semaphore(0)
        self.proceed = threading.Semaphore(0)

    def trigger(self, site: str, detail: str = "") -> None:
        if site == "storage.scan" and self.armed:
            self.parked.release()
            assert self.proceed.acquire(timeout=30), "gate never released"


class ScanCounter(FaultRegistry):
    """Counts ``storage.scan`` passes (to learn how many handshakes one
    query costs a :class:`ScanGate`)."""

    def __init__(self):
        super().__init__(0, ())
        self.scans = 0

    def trigger(self, site: str, detail: str = "") -> None:
        if site == "storage.scan":
            self.scans += 1


def count_scans(catalog, strategy: str) -> int:
    counter = ScanCounter()
    db = Database(catalog, faults=counter)
    db.execute(EMP_DEPT_QUERY, strategy=strategy)
    assert counter.scans > 0
    return counter.scans


def run_through(gate: ScanGate, clock: SettableClock, n_scans: int,
                seconds: float) -> None:
    """Walk one parked query through all its scans, advancing the fake
    clock by ``seconds`` while it sits in the first one."""
    assert gate.parked.acquire(timeout=30)
    clock.advance(seconds)
    gate.proceed.release()
    for _ in range(n_scans - 1):
        assert gate.parked.acquire(timeout=30)
        gate.proceed.release()


# -- unit: fingerprints and priorities ---------------------------------------

class TestFingerprint:
    def test_literals_and_whitespace_do_not_change_the_shape(self):
        a = "SELECT name FROM dept WHERE num_emps > 10"
        b = "select  name\n from dept where num_emps >   999"
        assert normalize_sql(a) == normalize_sql(b)
        assert fingerprint(a) == fingerprint(b)

    def test_string_literals_are_stripped(self):
        a = "SELECT * FROM emp WHERE building = 'b1'"
        b = "SELECT * FROM emp WHERE building = 'it''s'"
        assert fingerprint(a) == fingerprint(b)

    def test_different_shapes_differ(self):
        assert fingerprint("SELECT a FROM t") != fingerprint(
            "SELECT b FROM t"
        )

    def test_identifiers_keep_their_digits(self):
        # ``t2`` is an identifier, not a literal: it must survive.
        assert "t2" in normalize_sql("SELECT a FROM t2")

    def test_priority_rank(self):
        assert priority_rank("high") == 0
        assert priority_rank("normal") == 1
        assert priority_rank("low") == 2
        with pytest.raises(ValueError):
            priority_rank("urgent")


# -- unit: service-time estimator --------------------------------------------

class TestEstimator:
    def test_cold_estimator_offers_nothing(self):
        est = ServiceTimeEstimator()
        assert est.estimate("fp", "magic") is None
        assert est.global_mean() is None
        assert est.cheapest("fp", ("magic", "ni")) is None

    def test_lookup_chain_key_then_shape_then_global(self):
        est = ServiceTimeEstimator(alpha=0.5)
        est.observe("fp1", "magic", 1.0)
        assert est.estimate("fp1", "magic") == 1.0     # exact key
        assert est.estimate("fp1", "dayal") == 1.0     # shape aggregate
        assert est.estimate("other", "magic") == 1.0   # global mean

    def test_ema_smoothing(self):
        est = ServiceTimeEstimator(alpha=0.5)
        est.observe("fp", "magic", 1.0)
        est.observe("fp", "magic", 3.0)
        assert est.estimate("fp", "magic") == pytest.approx(2.0)

    def test_cheapest_requires_evidence_per_candidate(self):
        est = ServiceTimeEstimator()
        est.observe("fp", "ni", 2.0)
        est.observe("fp", "magic", 0.1)
        assert est.cheapest("fp", ("ni", "magic", "dayal")) == "magic"
        # No candidate with history -> no forced guess.
        assert est.cheapest("fp", ("dayal", "kim")) is None

    def test_lru_bound_on_shapes(self):
        est = ServiceTimeEstimator(max_shapes=2)
        for i in range(5):
            est.observe(f"fp{i}", "magic", 1.0)
        assert len(est._by_key) == 2
        assert len(est._by_shape) == 2
        assert est.as_dict()["observations"] == 5

    def test_reads_refresh_recency_under_churn(self):
        """Regression: a hot shape that is only ever *read* (admission
        checks it every arrival) must survive a flood of one-off shapes
        that are merely observed -- ``estimate()`` hits refresh LRU
        recency on both the key and shape tiers."""
        est = ServiceTimeEstimator(max_shapes=4)
        est.observe("hot", "magic", 1.0)
        for i in range(50):
            assert est.estimate("hot", "magic") == 1.0   # key-tier read
            assert est.estimate("hot", "dayal") == 1.0   # shape-tier read
            est.observe(f"cold{i}", "ni", 2.0)
        assert ("hot", "magic") in est._by_key
        assert "hot" in est._by_shape

    def test_cheapest_refreshes_consulted_keys_under_churn(self):
        """Regression: the brownout ladder consults ``cheapest()`` for
        the same hot shape on every forced dequeue; the consulted keys
        must not be evicted by churn between consultations."""
        est = ServiceTimeEstimator(max_shapes=3)
        est.observe("hot", "magic", 0.1)
        est.observe("hot", "ni", 0.5)
        for i in range(20):
            assert est.cheapest("hot", ("magic", "ni")) == "magic"
            est.observe(f"cold{i}", "dayal", 1.0)
        assert ("hot", "magic") in est._by_key
        assert ("hot", "ni") in est._by_key

    def test_validation(self):
        with pytest.raises(ValueError):
            ServiceTimeEstimator(alpha=0.0)
        with pytest.raises(ValueError):
            ServiceTimeEstimator(max_shapes=0)
        est = ServiceTimeEstimator()
        est.observe("fp", "magic", -1.0)  # ignored, not folded in
        assert est.global_mean() is None


# -- unit: token bucket and retry governor ------------------------------------

class TestTokenBucket:
    def test_capacity_then_refill(self):
        bucket = TokenBucket(capacity=2.0, refill_per_s=1.0)
        assert bucket.take(0.0)
        assert bucket.take(0.0)
        assert not bucket.take(0.0)       # dry
        assert not bucket.take(0.5)       # half a token is not enough
        assert bucket.take(1.5)           # 1.5 tokens accrued
        assert bucket.available(100.0) == pytest.approx(2.0)  # capped

    def test_validation(self):
        with pytest.raises(ValueError):
            TokenBucket(0, 1.0)
        with pytest.raises(ValueError):
            TokenBucket(1.0, -1.0)


class TestRetryGovernor:
    def test_compliant_clients_are_never_charged(self):
        gov = RetryGovernor(capacity=1.0, refill_per_s=0.0)
        gov.record_rejection("fp", now=0.0, hint=5.0)
        allowed, remaining = gov.admit("fp", now=5.0)  # honoured the hint
        assert allowed and remaining is None
        assert gov.penalized == 0

    def test_early_resubmission_pays_then_is_rejected(self):
        gov = RetryGovernor(capacity=1.0, refill_per_s=0.0)
        gov.record_rejection("fp", now=0.0, hint=10.0)
        allowed, remaining = gov.admit("fp", now=1.0)
        assert allowed and remaining == pytest.approx(9.0)
        assert gov.penalized == 1
        gov.record_rejection("fp", now=1.0, hint=9.0)
        allowed, remaining = gov.admit("fp", now=2.0)
        assert not allowed
        assert remaining == pytest.approx(8.0)
        assert gov.rejected == 1

    def test_penalty_decays_at_the_refill_rate(self):
        gov = RetryGovernor(capacity=1.0, refill_per_s=1.0)
        gov.record_rejection("fp", now=0.0, hint=100.0)
        assert gov.admit("fp", now=0.0)[0]       # pays the only token
        gov.record_rejection("fp", now=0.0, hint=100.0)
        assert not gov.admit("fp", now=0.1)[0]   # dry
        gov.record_rejection("fp", now=0.1, hint=100.0)
        assert gov.admit("fp", now=2.0)[0]       # bucket refilled

    def test_forgive_drops_the_record_without_charge(self):
        gov = RetryGovernor(capacity=1.0, refill_per_s=0.0)
        gov.record_rejection("fp", now=0.0, hint=10.0)
        gov.forgive("fp")
        allowed, remaining = gov.admit("fp", now=1.0)
        assert allowed and remaining is None
        assert gov.penalized == 0

    def test_hintless_rejections_are_not_tracked(self):
        gov = RetryGovernor()
        gov.record_rejection("fp", now=0.0, hint=None)
        assert gov.admit("fp", now=0.0) == (True, None)


# -- unit: the brownout ladder -------------------------------------------------

class TestBrownoutController:
    def test_steps_down_after_dwell_one_level_at_a_time(self):
        ctl = BrownoutController(dwell_s=1.0, cooldown_s=1.0)
        assert ctl.observe(0.9, now=0.0) is None      # dwell starts
        assert ctl.observe(0.9, now=0.5) is None      # still dwelling
        assert ctl.observe(0.9, now=1.0) == (0, 1)
        # Re-dwell before the next rung: no immediate second step.
        assert ctl.observe(0.9, now=1.5) is None
        assert ctl.observe(0.9, now=2.0) == (1, 2)
        assert ctl.observe(0.9, now=3.0) == (2, 3)
        assert ctl.observe(0.9, now=10.0) is None     # max level holds
        assert ctl.level == 3

    def test_between_watermarks_resets_both_timers(self):
        ctl = BrownoutController(
            high_watermark=0.8, low_watermark=0.4, dwell_s=1.0
        )
        ctl.observe(0.9, now=0.0)
        ctl.observe(0.6, now=0.5)      # back between the watermarks
        assert ctl.observe(0.9, now=1.2) is None  # dwell restarted
        assert ctl.observe(0.9, now=2.2) == (0, 1)

    def test_recovery_needs_sustained_low_utilization(self):
        ctl = BrownoutController(dwell_s=0.0, cooldown_s=2.0)
        ctl.observe(1.0, now=0.0)              # -> level 1
        assert ctl.level == 1
        assert ctl.observe(0.1, now=1.0) is None   # cooling
        assert ctl.observe(0.1, now=3.0) == (1, 0)
        assert ctl.level == 0

    def test_oscillation_around_one_watermark_never_flaps(self):
        ctl = BrownoutController(
            high_watermark=0.8, low_watermark=0.4,
            dwell_s=1.0, cooldown_s=1.0,
        )
        ctl.observe(0.9, now=0.0)
        ctl.observe(0.9, now=1.0)
        assert ctl.level == 1
        # Utilization hovers just under the high watermark: the level
        # must hold (no step down, and no recovery either).
        for i in range(20):
            assert ctl.observe(0.7, now=2.0 + i) is None
        assert ctl.level == 1

    def test_max_level_zero_disables_stepping(self):
        ctl = BrownoutController(dwell_s=0.0, max_level=0)
        assert ctl.observe(5.0, now=0.0) is None
        assert ctl.level == 0

    def test_rung_properties(self):
        ctl = BrownoutController()
        assert not ctl.shedding_observability
        ctl.level = 1
        assert ctl.shedding_observability and not ctl.tightening_budgets
        ctl.level = 2
        assert ctl.tightening_budgets and not ctl.forcing_cheapest
        ctl.level = 3
        assert ctl.forcing_cheapest

    def test_validation(self):
        with pytest.raises(ValueError):
            BrownoutController(high_watermark=0.0)
        with pytest.raises(ValueError):
            BrownoutController(low_watermark=0.9, high_watermark=0.8)
        with pytest.raises(ValueError):
            BrownoutController(dwell_s=-1)
        with pytest.raises(ValueError):
            BrownoutController(max_level=len(BROWNOUT_RUNGS))


class TestOverloadConfig:
    def test_quota_rounds_up_and_unlisted_classes_are_free(self):
        config = OverloadConfig()
        assert config.quota_for("low", 3) == 2       # ceil(1.5)
        assert config.quota_for("normal", 10) == 9
        assert config.quota_for("high", 10) is None

    def test_zero_retry_tokens_disable_the_governor(self):
        assert OverloadConfig(retry_tokens=0).build_governor() is None
        assert OverloadConfig().build_governor() is not None


class TestGuardDeadline:
    def test_expired_predicate_matches_the_check_comparison(self):
        clock = SettableClock()
        guard = ExecutionGuard(Limits(timeout=1.0), clock=clock)
        assert guard.deadline == pytest.approx(1.0)
        assert not guard.expired()
        clock.advance(0.99)
        assert not guard.expired()
        clock.advance(0.02)
        assert guard.expired()

    def test_no_timeout_never_expires(self):
        guard = ExecutionGuard(Limits(), clock=SettableClock())
        assert guard.deadline is None
        assert not guard.expired()


# -- integration: the service under overload control ---------------------------

@pytest.fixture
def gate() -> Gate:
    return Gate()


@pytest.fixture
def gated_db(empdept_catalog, gate) -> Database:
    return Database(empdept_catalog, faults=gate)


#: Overload control with the adaptive *reactions* most tests don't want
#: (retry governor, brownout, class quotas) switched off, so each test
#: isolates one mechanism.
PLAIN = OverloadConfig(
    retry_tokens=0, brownout_max_level=0, class_quotas={}
)


class TestEagerExpiry:
    def test_expired_queued_ticket_frees_the_slot_without_a_worker(
        self, gated_db, gate
    ):
        sink = RingSink(capacity=16384)
        service = QueryService(
            gated_db, workers=1, max_queue=4, overload=PLAIN,
            events=EventLog(sink),
        )
        try:
            service.submit(EMP_DEPT_QUERY)       # wedges the only worker
            assert gate.started.wait(30)
            doomed = service.submit(EMP_DEPT_QUERY, deadline=0.0)
            assert service.evaluate_overload() == 0  # sweeps the queue
            assert doomed.done
            assert doomed.state == "expired"
            assert doomed.started_at is None     # no worker ever ran it
            with pytest.raises(BudgetExceeded) as info:
                doomed.result(timeout=1)
            assert info.value.budget == "timeout"
        finally:
            gate.release.set()
            service.close(drain=True, timeout=30)
        stats = service.stats()
        assert stats.expired_in_queue == 1
        assert stats.completed == 1
        assert stats.failed == 0                 # distinct outcome
        assert stats.reconciles()
        expired = [
            e for e in sink.events() if e["kind"] == "overload.expired"
        ]
        assert [e["query_id"] for e in expired] == [doomed.query_id]

    def test_seed_behaviour_unchanged_without_overload(
        self, gated_db, gate
    ):
        # Same scenario, overload off: the expired ticket waits for a
        # worker and resolves as a plain failure.
        service = QueryService(gated_db, workers=1, max_queue=4)
        try:
            service.submit(EMP_DEPT_QUERY)
            assert gate.started.wait(30)
            doomed = service.submit(EMP_DEPT_QUERY, deadline=0.0)
            assert not doomed.done
        finally:
            gate.release.set()
            service.close(drain=True, timeout=30)
        stats = service.stats()
        assert stats.expired_in_queue == 0
        assert stats.failed == 1
        assert stats.reconciles()


class TestPriorityScheduling:
    def test_high_priority_sheds_the_newest_low_ticket(
        self, gated_db, gate
    ):
        sink = RingSink(capacity=16384)
        service = QueryService(
            gated_db, workers=1, max_queue=2, overload=PLAIN,
            events=EventLog(sink),
        )
        try:
            service.submit(EMP_DEPT_QUERY)       # wedges the only worker
            assert gate.started.wait(30)
            low_old = service.submit(EMP_DEPT_QUERY, priority="low")
            low_new = service.submit(EMP_DEPT_QUERY, priority="low")
            urgent = service.submit(EMP_DEPT_QUERY, priority="high")
            # The newest lowest-priority ticket was shed, not the oldest.
            assert low_new.done and not low_old.done
            assert low_new.state == "shed"
            with pytest.raises(QueryShed) as info:
                low_new.result(timeout=1)
            assert info.value.priority == "low"
            gate.release.set()
            assert sorted(urgent.result(timeout=30).rows) == EXPECTED
            assert sorted(low_old.result(timeout=30).rows) == EXPECTED
            # Priority order: the high ticket ran before the older low.
            assert urgent.started_at < low_old.started_at
        finally:
            gate.release.set()
            service.close(drain=True, timeout=30)
        stats = service.stats()
        assert stats.shed == 1
        assert stats.completed == 3
        assert stats.reconciles()
        shed_events = [
            e for e in sink.events() if e["kind"] == "overload.shed"
        ]
        assert [e["query_id"] for e in shed_events] == [low_new.query_id]
        assert shed_events[0]["priority"] == "low"

    def test_equal_priority_never_sheds(self, gated_db, gate):
        service = QueryService(
            gated_db, workers=1, max_queue=1, overload=PLAIN
        )
        try:
            service.submit(EMP_DEPT_QUERY)
            assert gate.started.wait(30)
            service.submit(EMP_DEPT_QUERY, priority="normal")
            with pytest.raises(AdmissionRejected) as info:
                service.submit(EMP_DEPT_QUERY, priority="normal")
            assert info.value.reason == "queue full"
        finally:
            gate.release.set()
            service.close(drain=True, timeout=30)
        assert service.stats().shed == 0
        assert service.stats().reconciles()

    def test_class_quota_caps_low_priority_queue_share(
        self, gated_db, gate
    ):
        # max_queue=4 with the default low quota 0.5 -> at most 2 queued
        # low tickets while the service is contended.
        service = QueryService(
            gated_db, workers=1, max_queue=4,
            overload=OverloadConfig(retry_tokens=0, brownout_max_level=0),
        )
        try:
            service.submit(EMP_DEPT_QUERY)
            assert gate.started.wait(30)
            service.submit(EMP_DEPT_QUERY, priority="low")
            service.submit(EMP_DEPT_QUERY, priority="low")
            with pytest.raises(AdmissionRejected) as info:
                service.submit(EMP_DEPT_QUERY, priority="low")
            assert info.value.reason == "class quota"
            # The classes above are untouched by the low quota.
            service.submit(EMP_DEPT_QUERY, priority="normal")
        finally:
            gate.release.set()
            service.close(drain=True, timeout=30)
        stats = service.stats()
        assert stats.rejected == 1
        assert stats.completed == 4
        assert stats.reconciles()

    def test_unknown_priority_rejected_before_any_counter_moves(self, db):
        with QueryService(db, workers=1, overload=PLAIN) as service:
            with pytest.raises(ValueError):
                service.submit(EMP_DEPT_QUERY, priority="urgent")
        assert service.stats().submitted == 0


class TestDeadlineAwareAdmission:
    def test_futile_submission_rejected_when_contended(
        self, empdept_catalog
    ):
        clock = SettableClock()
        gate = ScanGate()
        db = Database(empdept_catalog, faults=gate)
        n_scans = count_scans(empdept_catalog, "ni")
        service = QueryService(
            db, workers=1, max_queue=4, overload=PLAIN, clock=clock
        )
        try:
            gate.armed = True
            # Warm the estimator: one completion at exactly 1.0 fake
            # seconds of execution.
            warm = service.submit(EMP_DEPT_QUERY)
            run_through(gate, clock, n_scans, seconds=1.0)
            assert sorted(warm.result(timeout=30).rows) == EXPECTED
            # Jam the worker, then queue one ticket behind it.
            service.submit(EMP_DEPT_QUERY)
            assert gate.parked.acquire(timeout=30)
            service.submit(EMP_DEPT_QUERY)
            # This deadline cannot cover ~1s of queue wait plus ~1s of
            # its own execution: rejected, with the predicted wait as
            # the retry hint.
            with pytest.raises(AdmissionRejected) as info:
                service.submit(EMP_DEPT_QUERY, deadline=0.1)
            assert info.value.reason == "deadline unmeetable"
            assert info.value.retry_after_hint > 0
            # A *meetable* deadline at the same depth is admitted.
            ok = service.submit(EMP_DEPT_QUERY, deadline=60.0)
            gate.proceed.release()
            for _ in range(n_scans - 1):
                assert gate.parked.acquire(timeout=30)
                gate.proceed.release()
            run_through(gate, clock, n_scans, seconds=1.0)
            run_through(gate, clock, n_scans, seconds=1.0)
            assert sorted(ok.result(timeout=30).rows) == EXPECTED
        finally:
            gate.armed = False
            gate.proceed.release()
            service.close(drain=True, timeout=30)
        stats = service.stats()
        assert stats.rejected_futile == 1
        assert stats.reconciles()

    def test_idle_workers_execute_even_doomed_queries(self, db):
        # Futility rejection only pays under contention: with an idle
        # worker the service runs the query and lets the guard decide.
        with QueryService(db, workers=2, overload=PLAIN) as service:
            service.submit(EMP_DEPT_QUERY).result(timeout=30)  # warm
            ticket = service.submit(EMP_DEPT_QUERY, deadline=0.0)
            ticket.wait(30)
        stats = service.stats()
        assert stats.rejected_futile == 0
        assert stats.reconciles()


class TestRetryStorm:
    def test_hot_looping_shape_pays_tokens_then_is_rejected(
        self, empdept_catalog
    ):
        clock = SettableClock()
        gate = ScanGate()
        db = Database(empdept_catalog, faults=gate)
        n_scans = count_scans(empdept_catalog, "ni")
        config = OverloadConfig(
            retry_tokens=1.0, retry_refill_per_s=0.0,
            brownout_max_level=0, deadline_admission=False,
            class_quotas={},
        )
        service = QueryService(
            db, workers=1, max_queue=1, overload=config, clock=clock
        )
        try:
            gate.armed = True
            warm = service.submit(EMP_DEPT_QUERY)
            run_through(gate, clock, n_scans, seconds=1.0)
            warm.result(timeout=30)
            # Jam the worker and fill the single queue slot.
            service.submit(EMP_DEPT_QUERY)
            assert gate.parked.acquire(timeout=30)
            queued = service.submit(EMP_DEPT_QUERY)
            # First rejection: full queue, hint recorded for the shape.
            with pytest.raises(AdmissionRejected) as first:
                service.submit(EMP_DEPT_QUERY)
            assert first.value.reason == "queue full"
            assert first.value.retry_after_hint > 0
            # Hot-loop resubmission (the clock has not moved): pays the
            # only token, still rejected on capacity.
            with pytest.raises(AdmissionRejected) as second:
                service.submit(EMP_DEPT_QUERY)
            assert second.value.reason == "queue full"
            # Next hot-loop: the bucket is dry -> rejected as a storm
            # before the capacity rule is even consulted.
            with pytest.raises(AdmissionRejected) as third:
                service.submit(EMP_DEPT_QUERY)
            assert third.value.reason == "retry storm"
            assert third.value.retry_after_hint > 0
            # Drain, then resubmit the same shape *early* (the clock is
            # still before its welcome-back time): the service now has
            # capacity, so the record is forgiven, not charged.
            gate.proceed.release()
            for _ in range(n_scans - 1):
                assert gate.parked.acquire(timeout=30)
                gate.proceed.release()
            run_through(gate, clock, n_scans, seconds=1.0)
            queued.result(timeout=30)
            forgiven = service.submit(EMP_DEPT_QUERY)
            run_through(gate, clock, n_scans, seconds=1.0)
            assert sorted(forgiven.result(timeout=30).rows) == EXPECTED
        finally:
            gate.armed = False
            gate.proceed.release()
            service.close(drain=True, timeout=30)
        stats = service.stats()
        assert stats.retry_penalized == 1
        assert stats.retry_storm_rejected == 1
        assert stats.rejected == 3
        assert stats.reconciles()
        assert stats.overload["retry"] == {"penalized": 1, "rejected": 1}


class TestRetryHintAccuracy:
    def test_hint_tracks_the_actual_drain_time_on_a_stepped_clock(
        self, empdept_catalog
    ):
        """The satellite contract: a rejection's ``retry_after_hint``
        must be within a factor of two of the *actual* time it took the
        backlog present at rejection to drain -- measured on the same
        fake clock the estimator learned from (1.0 s per execution,
        stepped while the worker is parked mid-scan)."""
        clock = SettableClock()
        gate = ScanGate()
        db = Database(empdept_catalog, faults=gate)
        n_scans = count_scans(empdept_catalog, "ni")
        service = QueryService(
            db, workers=1, max_queue=2, overload=PLAIN, clock=clock
        )
        try:
            gate.armed = True
            for _ in range(2):  # warm: EMA settles at exactly 1.0 s
                warm = service.submit(EMP_DEPT_QUERY)
                run_through(gate, clock, n_scans, seconds=1.0)
                warm.result(timeout=30)
            # Backlog at rejection: one running (parked at its first
            # scan) + two queued, all the same 1.0 s shape.
            running = service.submit(EMP_DEPT_QUERY)
            assert gate.parked.acquire(timeout=30)
            queued = [service.submit(EMP_DEPT_QUERY) for _ in range(2)]
            rejected_at = clock.now
            with pytest.raises(AdmissionRejected) as info:
                service.submit(EMP_DEPT_QUERY)
            hint = info.value.retry_after_hint
            assert hint is not None and hint > 0
            # Drain on the fake clock: 1.0 s each for the running query
            # and the two queued ones.
            clock.advance(1.0)
            gate.proceed.release()
            for _ in range(n_scans - 1):
                assert gate.parked.acquire(timeout=30)
                gate.proceed.release()
            for ticket in queued:
                run_through(gate, clock, n_scans, seconds=1.0)
            running.result(timeout=30)
            for ticket in queued:
                ticket.result(timeout=30)
            actual_wait = clock.now - rejected_at
            assert actual_wait == pytest.approx(3.0)
            # The hint is (queued estimates + half the running query +
            # one mean) / workers = (1 + 1 + 0.5 + 1) / 1 = 3.5 -- on
            # the right order of magnitude, never off by 2x.
            assert hint == pytest.approx(3.5)
            assert actual_wait / 2 <= hint <= actual_wait * 2
        finally:
            gate.armed = False
            gate.proceed.release()
            service.close(drain=True, timeout=30)
        stats = service.stats()
        assert stats.rejected_with_hint == 1
        assert stats.reconciles()


class TestBrownoutLadderIntegration:
    def test_ladder_walks_down_under_pressure_and_back_up(
        self, gated_db, gate
    ):
        sink = RingSink(capacity=16384)
        config = OverloadConfig(
            retry_tokens=0, brownout_dwell_s=0.0, brownout_cooldown_s=0.0
        )
        service = QueryService(
            gated_db, workers=1, max_queue=8, overload=config,
            trace=True, events=EventLog(sink),
        )
        try:
            # Each submission is a pressure observation; with zero dwell
            # the ladder steps one rung per saturated sample.
            service.submit(EMP_DEPT_QUERY)       # util 1.0 -> level 1
            assert gate.started.wait(30)
            service.submit(EMP_DEPT_QUERY)       # util 2.0 -> level 2
            tightened = service.submit(          # util 3.0 -> level 3
                EMP_DEPT_QUERY, limits=Limits(max_rows_scanned=100),
            )
            # Level 2+ halves the row budgets of newly admitted work;
            # the deadline contract is never touched.
            assert tightened.guard.limits.max_rows_scanned == 50
            assert service.stats().brownout_level == 3
            # Level 3 vetoes everything but the cheapest strategy (the
            # default "magic" while the estimator has no evidence).
            forced = service.submit(EMP_DEPT_QUERY, strategy="dayal")
            gate.release.set()
            result = forced.result(timeout=30)
            assert sorted(result.rows) == EXPECTED
            assert any(
                "forcing cheapest" in (event.message or "")
                for event in result.degradations
            )
            service.drain(timeout=30)
            # Recovery, one rung per cooled observation -- never a jump
            # straight back to normal.
            assert service.evaluate_overload() == 2
            assert service.evaluate_overload() == 1
            assert service.evaluate_overload() == 0
        finally:
            gate.release.set()
            service.close(drain=True, timeout=30)
        stats = service.stats()
        transitions = stats.brownout_transitions
        assert [(t["from"], t["to"]) for t in transitions] == [
            (0, 1), (1, 2), (2, 3), (3, 2), (2, 1), (1, 0)
        ]
        assert transitions[0]["rung"] == BROWNOUT_RUNGS[1]
        assert transitions[0]["direction"] == "down"
        assert transitions[-1]["direction"] == "up"
        assert [
            (e["from"], e["to"]) for e in sink.events()
            if e["kind"] == "overload.brownout"
        ] == [(t["from"], t["to"]) for t in transitions]
        # Rung 1 shed observability: every query here was dequeued at
        # level >= 1, so nothing was traced despite trace=True.
        assert stats.recent_traces == []
        assert stats.reconciles()

    def test_brownout_veto_does_not_poison_breakers(
        self, gated_db, gate
    ):
        config = OverloadConfig(
            retry_tokens=0, brownout_dwell_s=0.0, brownout_cooldown_s=0.0
        )
        service = QueryService(
            gated_db, workers=1, max_queue=8, overload=config
        )
        try:
            service.submit(EMP_DEPT_QUERY)
            assert gate.started.wait(30)
            for _ in range(3):                   # drive to level 3
                service.submit(EMP_DEPT_QUERY)
            vetoed = [
                service.submit(EMP_DEPT_QUERY, strategy="dayal")
                for _ in range(5)
            ]
            gate.release.set()
            for ticket in vetoed:
                ticket.result(timeout=30)
        finally:
            gate.release.set()
            service.close(drain=True, timeout=30)
        # Five consecutive vetoes of "dayal" must not have opened its
        # breaker: a brownout veto is not a strategy failure.
        assert service.stats().breakers["dayal"]["state"] == "closed"
        assert service.stats().reconciles()


class TestOverloadStatsExport:
    @pytest.fixture
    def stats_after_mixed_outcomes(self, gated_db, gate):
        service = QueryService(
            gated_db, workers=1, max_queue=2, overload=PLAIN
        )
        try:
            service.submit(EMP_DEPT_QUERY)
            assert gate.started.wait(30)
            service.submit(EMP_DEPT_QUERY, deadline=0.0)  # will expire
            service.evaluate_overload()
            service.submit(EMP_DEPT_QUERY, priority="low")
            service.submit(EMP_DEPT_QUERY, priority="low")
            service.submit(EMP_DEPT_QUERY, priority="high")  # sheds a low
        finally:
            gate.release.set()
            service.close(drain=True, timeout=30)
        return service.stats()

    def test_json_export_carries_the_overload_counters(
        self, stats_after_mixed_outcomes
    ):
        import json

        payload = json.loads(stats_after_mixed_outcomes.export("json"))
        assert payload["expired_in_queue"] == 1
        assert payload["shed"] == 1
        assert payload["brownout_level"] == 0
        assert payload["overload"]["estimator"]["observations"] >= 1
        assert payload["queue_wait_histogram"]["count"] >= 1

    def test_prometheus_export_carries_the_overload_counters(
        self, stats_after_mixed_outcomes
    ):
        text = stats_after_mixed_outcomes.export("prometheus")
        assert "# TYPE repro_queries_shed_total counter" in text
        assert "repro_queries_shed_total 1" in text
        assert "repro_queries_expired_in_queue_total 1" in text
        assert "# HELP repro_queries_rejected_futile_total" in text
        assert "# TYPE repro_brownout_level gauge" in text
        assert (
            "# HELP repro_queue_wait_seconds "
            "Queue wait from admission to worker dequeue"
        ) in text
        assert "# TYPE repro_queue_wait_seconds histogram" in text
        assert "repro_queue_wait_seconds_count" in text

    def test_conservation_law_with_overload_outcomes(
        self, stats_after_mixed_outcomes
    ):
        stats = stats_after_mixed_outcomes
        assert stats.admitted == (
            stats.completed + stats.failed + stats.cancelled
            + stats.shed + stats.expired_in_queue
        )
        assert stats.reconciles()


class TestQueueWaitSamplingCoverage:
    """Regression (PR 10): shed and expired-in-queue tickets -- the
    *longest* waiters -- must reach the queue-wait histogram too.
    Sampling only on the dequeue-to-run path biased the exported wait
    low exactly when the queue was pathological."""

    def test_every_admitted_ticket_is_sampled_exactly_once(
        self, gated_db, gate
    ):
        service = QueryService(
            gated_db, workers=1, max_queue=2, overload=PLAIN
        )
        try:
            service.submit(EMP_DEPT_QUERY)       # runs (wedges the worker)
            assert gate.started.wait(30)
            doomed = service.submit(EMP_DEPT_QUERY, deadline=0.0)
            service.evaluate_overload()          # expires doomed in queue
            service.submit(EMP_DEPT_QUERY, priority="low")
            low_new = service.submit(EMP_DEPT_QUERY, priority="low")
            service.submit(EMP_DEPT_QUERY, priority="high")  # sheds low_new
            assert doomed.state == "expired"
            assert low_new.state == "shed"
        finally:
            gate.release.set()
            service.close(drain=True, timeout=30)
        stats = service.stats()
        assert stats.shed == 1 and stats.expired_in_queue == 1
        hist = stats.queue_wait_histogram
        # One sample per *admitted* ticket -- the three that reached a
        # worker AND the two evicted from the queue, not just the runners.
        assert stats.admitted == 5
        assert hist["count"] == stats.admitted
