"""Circuit breaker: unit state machine + service-level open/recover."""

import pytest

from repro import Database, FaultRegistry, QueryService
from repro.errors import FaultInjectedError
from repro.serve.breaker import CLOSED, HALF_OPEN, OPEN, CircuitBreaker
from repro.tpcd import EMP_DEPT_QUERY

from .test_service import EXPECTED


class FakeClock:
    def __init__(self, now: float = 100.0):
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


@pytest.fixture
def clock() -> FakeClock:
    return FakeClock()


@pytest.fixture
def breaker(clock) -> CircuitBreaker:
    return CircuitBreaker("kim", threshold=3, cooldown=10.0, clock=clock)


class TestStateMachine:
    def test_starts_closed_and_passes(self, breaker):
        assert breaker.state == CLOSED
        assert breaker.try_pass() == (None, False)

    def test_failures_below_threshold_stay_closed(self, breaker):
        breaker.record_failure("boom")
        breaker.record_failure("boom")
        assert breaker.state == CLOSED
        assert breaker.try_pass() == (None, False)

    def test_success_resets_the_consecutive_count(self, breaker):
        breaker.record_failure("boom")
        breaker.record_failure("boom")
        breaker.record_success()
        breaker.record_failure("boom")
        breaker.record_failure("boom")
        assert breaker.state == CLOSED

    def test_opens_at_threshold(self, breaker):
        for _ in range(3):
            breaker.record_failure("boom")
        assert breaker.state == OPEN
        reason, probe = breaker.try_pass()
        assert reason is not None and "kim" in reason
        assert not probe

    def test_half_open_after_cooldown_claims_single_probe(
        self, breaker, clock
    ):
        for _ in range(3):
            breaker.record_failure("boom")
        clock.advance(10.0)
        reason, probe = breaker.try_pass()
        assert reason is None and probe
        assert breaker.state == HALF_OPEN
        # Only one probe at a time: a second caller is still blocked.
        reason, probe = breaker.try_pass()
        assert reason is not None and not probe

    def test_probe_success_closes(self, breaker, clock):
        for _ in range(3):
            breaker.record_failure("boom")
        clock.advance(10.0)
        assert breaker.try_pass() == (None, True)
        breaker.record_success()
        assert breaker.state == CLOSED
        assert breaker.try_pass() == (None, False)

    def test_probe_failure_reopens_and_restarts_cooldown(
        self, breaker, clock
    ):
        for _ in range(3):
            breaker.record_failure("boom")
        clock.advance(10.0)
        assert breaker.try_pass() == (None, True)
        breaker.record_failure("still broken")
        assert breaker.state == OPEN
        clock.advance(5.0)  # half the cooldown: still blocked
        reason, probe = breaker.try_pass()
        assert reason is not None and not probe
        clock.advance(5.0)
        assert breaker.try_pass() == (None, True)

    def test_released_probe_frees_the_slot(self, breaker, clock):
        for _ in range(3):
            breaker.record_failure("boom")
        clock.advance(10.0)
        assert breaker.try_pass() == (None, True)
        breaker.release_probe()
        assert breaker.state == HALF_OPEN
        assert breaker.try_pass() == (None, True)

    def test_transitions_are_reported(self, clock):
        seen = []
        breaker = CircuitBreaker(
            "kim", threshold=1, cooldown=1.0, clock=clock,
            on_transition=seen.append,
        )
        breaker.record_failure("boom")
        clock.advance(1.0)
        breaker.try_pass()
        breaker.record_success()
        assert [(t.from_state, t.to_state) for t in seen] == [
            ("closed", "open"),
            ("open", "half_open"),
            ("half_open", "closed"),
        ]
        assert all(t.strategy == "kim" for t in seen)

    def test_snapshot(self, breaker):
        breaker.record_failure("boom")
        snap = breaker.snapshot()
        assert breaker.strategy == "kim"
        assert snap["state"] == "closed"
        assert snap["consecutive_failures"] == 1


class TestHalfOpenConcurrency:
    """Submitters racing a cooldown-elapsed breaker: the single-probe
    invariant must hold under real thread interleavings, not just the
    sequential state-machine tests above."""

    N_RACERS = 16

    def _race(self, breaker):
        import threading

        barrier = threading.Barrier(self.N_RACERS)
        lock = threading.Lock()
        outcomes = []

        def racer():
            barrier.wait()
            reason, probe = breaker.try_pass()
            with lock:
                outcomes.append((reason, probe))

        threads = [
            threading.Thread(target=racer) for _ in range(self.N_RACERS)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        return outcomes

    def test_exactly_one_racer_wins_the_probe(self, breaker, clock):
        for _ in range(3):
            breaker.record_failure("boom")
        clock.advance(10.0)
        outcomes = self._race(breaker)
        winners = [o for o in outcomes if o[1]]
        losers = [o for o in outcomes if not o[1]]
        assert len(winners) == 1
        assert winners[0][0] is None
        assert len(losers) == self.N_RACERS - 1
        assert all(reason is not None for reason, _ in losers)
        assert breaker.state == HALF_OPEN

    def test_released_probe_admits_exactly_one_new_racer(
        self, breaker, clock
    ):
        for _ in range(3):
            breaker.record_failure("boom")
        clock.advance(10.0)
        assert breaker.try_pass() == (None, True)
        breaker.release_probe()
        outcomes = self._race(breaker)
        assert sum(1 for _, probe in outcomes if probe) == 1

    def test_probe_failure_blocks_every_concurrent_racer(
        self, breaker, clock
    ):
        for _ in range(3):
            breaker.record_failure("boom")
        clock.advance(10.0)
        assert breaker.try_pass() == (None, True)
        breaker.record_failure("still broken")  # reopens, restarts cooldown
        outcomes = self._race(breaker)
        assert all(not probe for _, probe in outcomes)
        assert all(reason is not None for reason, _ in outcomes)
        assert breaker.state == OPEN


class FlakyRegistry(FaultRegistry):
    """Fails every ``magic`` rewrite attempt while ``failing`` is set."""

    def __init__(self):
        super().__init__(0, ())
        self.failing = True

    def trigger(self, site: str, detail: str = "") -> None:
        if site == "rewrite.strategy" and detail == "magic" and self.failing:
            raise FaultInjectedError(site, 0, "synthetic magic failure")


class TestServiceIntegration:
    def test_breaker_opens_degrades_and_recovers(self, empdept_catalog):
        flaky = FlakyRegistry()
        clock = FakeClock()
        db = Database(empdept_catalog, faults=flaky)
        with QueryService(
            db, workers=1, breaker_threshold=2, breaker_cooldown=5.0,
            clock=clock,
        ) as service:
            # Two failing magic rewrites: both queries still answer (the
            # chain degrades to nested iteration) and the breaker opens.
            for _ in range(2):
                result = service.submit(
                    EMP_DEPT_QUERY, strategy="magic"
                ).result(timeout=30)
                assert sorted(result.rows) == EXPECTED
                assert [e.error_type for e in result.degradations] == [
                    "FaultInjectedError"
                ]
            stats = service.stats()
            assert stats.breakers["magic"]["state"] == "open"

            # While open, magic is skipped outright -- the degradation
            # event says CircuitBreakerOpen, not a re-paid rewrite fault.
            result = service.submit(
                EMP_DEPT_QUERY, strategy="magic"
            ).result(timeout=30)
            assert sorted(result.rows) == EXPECTED
            assert [e.error_type for e in result.degradations] == [
                "CircuitBreakerOpen"
            ]

            # Strategy heals + cooldown elapses: the half-open probe runs
            # magic for real, succeeds, and closes the breaker.
            flaky.failing = False
            clock.advance(5.0)
            result = service.submit(
                EMP_DEPT_QUERY, strategy="magic"
            ).result(timeout=30)
            assert sorted(result.rows) == EXPECTED
            assert result.degradations == []
            stats = service.stats()
            assert stats.breakers["magic"]["state"] == "closed"
            assert [
                (t.from_state, t.to_state)
                for t in stats.breaker_transitions
                if t.strategy == "magic"
            ] == [
                ("closed", "open"),
                ("open", "half_open"),
                ("half_open", "closed"),
            ]
            assert stats.reconciles()

    def test_last_resort_strategy_is_never_blocked(self, empdept_catalog):
        # Even if "ni" somehow accrues failures, the service exempts it:
        # there is nothing further to degrade to.
        flaky = FlakyRegistry()
        db = Database(empdept_catalog, faults=flaky)
        with QueryService(
            db, workers=1, breaker_threshold=1, breaker_cooldown=3600.0
        ) as service:
            service.submit(EMP_DEPT_QUERY, strategy="magic").result(timeout=30)
            assert service.stats().breakers["magic"]["state"] == "open"
            result = service.submit(
                EMP_DEPT_QUERY, strategy="ni"
            ).result(timeout=30)
            assert sorted(result.rows) == EXPECTED
