"""Service suite fixtures.

Like the guard suite, these tests pin their own fault registries; an
ambient ``REPRO_FAULTS``/``REPRO_VALIDATE`` (e.g. from a CI matrix job)
must not leak in.
"""

import pytest

from repro import Database


@pytest.fixture(autouse=True)
def _no_ambient_env(monkeypatch):
    monkeypatch.delenv("REPRO_FAULTS", raising=False)
    monkeypatch.delenv("REPRO_VALIDATE", raising=False)


@pytest.fixture
def db(empdept_catalog) -> Database:
    return Database(empdept_catalog)
