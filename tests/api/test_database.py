"""Unit tests for the public Database facade."""

import pytest

from repro import Database, Result, Strategy
from repro.errors import BindError, CatalogError, ExecutionError
from repro.exec import Metrics


@pytest.fixture
def db() -> Database:
    database = Database()
    database.execute_script(
        """
        CREATE TABLE t (id INT PRIMARY KEY, v TEXT, n FLOAT);
        INSERT INTO t VALUES (1, 'a', 1.5), (2, 'b', NULL), (3, 'a', 3.0);
        """
    )
    return database


class TestFacade:
    def test_execute_returns_result(self, db):
        result = db.execute("SELECT id, v FROM t ORDER BY id")
        assert isinstance(result, Result)
        assert result.columns == ["id", "v"]
        assert list(result) == [(1, "a"), (2, "b"), (3, "a")]
        assert len(result) == 3

    def test_scalar_helper(self, db):
        assert db.execute("SELECT count(*) FROM t").scalar() == 3
        with pytest.raises(ExecutionError):
            db.execute("SELECT id FROM t").scalar()

    def test_script_returns_per_statement_results(self, db):
        results = db.execute_script(
            "INSERT INTO t VALUES (4, 'd', 0); SELECT count(*) FROM t"
        )
        assert results[0].metrics.rows_output == 1
        assert results[1].scalar() == 4

    def test_insert_arity_mismatch(self, db):
        with pytest.raises(BindError):
            db.execute_script("INSERT INTO t (id, v) VALUES (9)")

    def test_insert_non_constant_rejected(self, db):
        with pytest.raises(BindError):
            db.execute_script("INSERT INTO t VALUES (9, v, 0)")

    def test_view_lifecycle(self, db):
        db.execute("CREATE VIEW va AS SELECT id FROM t WHERE v = 'a'")
        assert db.execute("SELECT count(*) FROM va").scalar() == 2
        # invalid view body fails eagerly
        with pytest.raises(BindError):
            db.execute("CREATE VIEW bad AS SELECT nosuch FROM t")

    def test_duplicate_table(self, db):
        with pytest.raises(CatalogError):
            db.execute("CREATE TABLE t (x INT)")

    def test_explain_requires_query(self, db):
        with pytest.raises(BindError):
            db.explain("CREATE TABLE u (x INT)")

    def test_explain_mentions_boxes(self, db):
        text = db.explain("SELECT id FROM t WHERE n > 1")
        assert "SELECT" in text and "BASE_TABLE" in text

    def test_unknown_cse_mode(self, db):
        with pytest.raises(ExecutionError):
            db.execute("SELECT 1", cse_mode="bogus")

    def test_strategy_on_uncorrelated_query(self, db):
        # Magic on a query without correlation is a no-op but must work.
        rows = db.execute("SELECT id FROM t", strategy=Strategy.MAGIC).rows
        assert sorted(rows) == [(1,), (2,), (3,)]

    def test_metrics_returned(self, db):
        metrics = db.execute("SELECT * FROM t").metrics
        assert metrics.rows_scanned == 3
        assert metrics.rows_output == 3
        assert metrics.as_dict()["total_work"] >= 3

    def test_strategy_labels(self):
        assert Strategy.NESTED_ITERATION.label == "NI"
        assert Strategy.MAGIC_OPT.label == "OptMag"
        assert len({s.label for s in Strategy}) == len(list(Strategy))


class TestResultScalarDiagnostics:
    def test_empty_result_raises_typed_error_naming_the_query(self, db):
        sql = "SELECT v FROM t WHERE id = 999"
        with pytest.raises(ExecutionError) as info:
            db.execute(sql).scalar()
        message = str(info.value)
        assert "empty result" in message
        assert sql in message

    def test_multi_row_result_names_shape_and_query(self, db):
        sql = "SELECT id FROM t"
        with pytest.raises(ExecutionError) as info:
            db.execute(sql).scalar()
        message = str(info.value)
        assert "3x1" in message
        assert sql in message

    def test_multi_column_result_rejected(self, db):
        with pytest.raises(ExecutionError) as info:
            db.execute("SELECT id, v FROM t WHERE id = 1").scalar()
        assert "1x2" in str(info.value)

    def test_result_carries_sql_and_degradations(self, db):
        result = db.execute("SELECT count(*) FROM t")
        assert "count(*)" in result.sql.lower()
        assert result.degradations == []

    def test_bare_result_scalar_still_typed(self):
        # A Result constructed outside the engine has no SQL to cite but
        # must raise the same typed error.
        with pytest.raises(ExecutionError) as info:
            Result(columns=["a"], rows=[], metrics=Metrics()).scalar()
        assert "empty result" in str(info.value)


class TestStatementAttribution:
    """Satellite: a failing DDL/INSERT inside a script names the statement
    that raised it, and every per-statement Result carries its source."""

    def test_script_results_carry_their_source(self, db):
        results = db.execute_script(
            "INSERT INTO t VALUES (7, 'g', 0); SELECT count(*) FROM t"
        )
        assert results[0].sql.startswith("INSERT INTO t VALUES (7")
        assert "count(*)" in results[1].sql

    def test_failing_insert_names_its_statement(self, db):
        with pytest.raises(BindError) as info:
            db.execute_script(
                "INSERT INTO t VALUES (8, 'h', 0);"
                " INSERT INTO t (id, v) VALUES (9)"
            )
        assert "INSERT INTO t (id, v) VALUES (9)" in str(info.value)
        assert "VALUES (8" not in str(info.value)
        assert info.value.sql.startswith("INSERT INTO t (id, v)")

    def test_failing_ddl_names_its_statement(self, db):
        with pytest.raises(CatalogError) as info:
            db.execute_script(
                "CREATE TABLE fresh (x INT); CREATE TABLE t (x INT)"
            )
        assert "[in statement: CREATE TABLE t (x INT)]" in str(info.value)
        # The script parsed as a whole, but statements before the failure
        # executed: all-or-nothing is per statement, not per script.
        assert db.catalog.has_table("fresh")

    def test_long_statements_are_truncated_in_messages(self, db):
        values = ", ".join(f"({i + 100}, 'x', 0)" for i in range(40))
        with pytest.raises(CatalogError) as info:
            db.execute_script(
                f"INSERT INTO t VALUES {values}; CREATE TABLE t (x INT)"
            )
        message = str(info.value)
        assert "CREATE TABLE t (x INT)" in message

    def test_single_statement_errors_are_annotated_too(self, db):
        with pytest.raises(CatalogError) as info:
            db.execute("CREATE TABLE t (x INT)")
        assert "[in statement: CREATE TABLE t (x INT)]" in str(info.value)
        assert info.value.sql == "CREATE TABLE t (x INT)"
