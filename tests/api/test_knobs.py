"""Tests for the paper's adaptation knobs exposed through the facade."""

from collections import Counter

import pytest

from repro import Database, Strategy


@pytest.fixture
def db(empdept_catalog) -> Database:
    return Database(empdept_catalog)


EXISTS_SQL = """
    SELECT d.name FROM dept d
    WHERE EXISTS (SELECT 1 FROM emp e WHERE e.building = d.building)
"""


class TestExistentialKnob:
    def test_knob_off_keeps_correlation(self, db):
        on = db.execute(EXISTS_SQL, strategy=Strategy.MAGIC)
        off = db.execute(
            EXISTS_SQL, strategy=Strategy.MAGIC, decorrelate_existential=False
        )
        assert Counter(on.rows) == Counter(off.rows)
        # knob off: the subquery still runs per row (nested iteration);
        # knob on: it runs per CI probe over a once-materialised result.
        assert off.metrics.subquery_invocations >= 6
        assert off.metrics.index_lookups > 0  # per-row emp index probes

    def test_knob_does_not_affect_scalar_aggregates(self, db):
        sql = """
            SELECT d.name FROM dept d
            WHERE d.num_emps > (SELECT count(*) FROM emp e
                                WHERE e.building = d.building)
        """
        off = db.execute(
            sql, strategy=Strategy.MAGIC, decorrelate_existential=False
        )
        assert off.metrics.subquery_invocations == 0  # fully decorrelated


class TestCseKnobAcrossStrategies:
    def test_materialize_never_changes_answers(self, db):
        queries = [
            EXISTS_SQL,
            """SELECT d.name FROM dept d
               WHERE d.num_emps > (SELECT count(*) FROM emp e
                                   WHERE e.building = d.building)""",
        ]
        for sql in queries:
            for strategy in (Strategy.NESTED_ITERATION, Strategy.MAGIC,
                             Strategy.MAGIC_OPT):
                a = db.execute(sql, strategy=strategy, cse_mode="recompute")
                b = db.execute(sql, strategy=strategy, cse_mode="materialize")
                assert Counter(a.rows) == Counter(b.rows), (strategy, sql)
