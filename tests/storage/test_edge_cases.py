"""Edge-case coverage for storage: empty tables, stats corner cases."""

import pytest

from repro.storage import Catalog, Column, Schema, compute_table_stats
from repro.storage.stats import compute_column_stats
from repro.types import SQLType


def make_table(catalog=None, name="t"):
    cat = catalog or Catalog()
    return cat.create_table(
        name,
        Schema([Column("a", SQLType.INT), Column("b", SQLType.STR)]),
    )


class TestEmptyTables:
    def test_stats_of_empty_table(self):
        table = make_table()
        stats = compute_table_stats(table)
        assert stats.row_count == 0
        a = stats.column("a")
        assert a.n_distinct == 0 and a.n_null == 0
        assert a.min_value is None and a.max_value is None
        assert a.selectivity_eq(0) == 0.0

    def test_scan_empty(self):
        table = make_table()
        assert list(table.scan()) == []

    def test_index_on_empty_table(self):
        table = make_table()
        idx = table.create_index("i", ["a"])
        assert idx.lookup(1) == []
        sorted_idx = table.create_index("s", ["a"], kind="sorted")
        assert sorted_idx.range() == []


class TestAllNullColumn:
    def test_stats(self):
        table = make_table()
        table.insert((None, None))
        table.insert((None, None))
        stats = compute_column_stats(table, "a")
        assert stats.n_null == 2
        assert stats.n_distinct == 0
        assert stats.selectivity_eq(2) == 0.0

    def test_sorted_index_skips_nulls(self):
        table = make_table()
        table.insert((None, "x"))
        table.insert((1, "y"))
        idx = table.create_index("s", ["a"], kind="sorted")
        assert idx.range() == [1]
        assert idx.lookup(None) == []


class TestMixedValues:
    def test_min_max_with_negatives(self):
        table = make_table()
        table.insert((-5, "a"))
        table.insert((3, "b"))
        stats = compute_column_stats(table, "a")
        assert (stats.min_value, stats.max_value) == (-5, 3)

    def test_float_column_coercion_in_stats(self):
        cat = Catalog()
        t = cat.create_table(
            "f", Schema([Column("x", SQLType.FLOAT)])
        )
        t.insert((1,))
        t.insert((2.5,))
        stats = compute_column_stats(t, "x")
        assert stats.min_value == 1.0
        assert stats.n_distinct == 2


class TestCatalogEdges:
    def test_drop_then_recreate(self):
        cat = Catalog()
        make_table(cat)
        cat.stats("t")
        cat.drop_table("t")
        table = make_table(cat)
        table.insert((1, "x"))
        assert cat.stats("t").row_count == 1

    def test_is_key_on_keyless_table(self):
        cat = Catalog()
        make_table(cat)
        assert not cat.is_key("t", ["a", "b"])

    def test_view_name_blocks_table(self):
        from repro.errors import CatalogError

        cat = Catalog()
        cat.create_view("v", "SELECT 1")
        with pytest.raises(CatalogError):
            make_table(cat, name="v")
