"""Storage-layer thread-safety: the races the query service depends on.

Each test hammers one documented critical section from many threads and
asserts the invariant the lock is supposed to protect.  A barrier lines
every thread up on the contended operation to maximise interleaving.
"""

import threading

import pytest

from repro.storage import Catalog, Column, Schema
from repro.storage.catalog import CatalogError
from repro.types import SQLType


def _schema() -> Schema:
    return Schema(
        [
            Column("id", SQLType.INT, nullable=False),
            Column("val", SQLType.STR),
        ],
        primary_key=["id"],
    )


def _run_threads(n: int, target) -> list:
    """Run ``target(i)`` in ``n`` threads behind a barrier; collect results
    or raised exceptions per thread."""
    barrier = threading.Barrier(n)
    results: list = [None] * n
    def wrapper(i: int) -> None:
        barrier.wait()
        try:
            results[i] = target(i)
        except Exception as exc:  # noqa: BLE001 - collected for assertions
            results[i] = exc
    threads = [
        threading.Thread(target=wrapper, args=(i,)) for i in range(n)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(30)
        assert not t.is_alive(), "storage operation wedged"
    return results


class TestCatalogRaces:
    def test_racing_create_table_has_one_winner(self):
        catalog = Catalog()
        results = _run_threads(
            8, lambda i: catalog.create_table("t", _schema())
        )
        errors = [r for r in results if isinstance(r, Exception)]
        assert len(errors) == 7
        assert all(isinstance(e, CatalogError) for e in errors)
        assert catalog.has_table("t")
        assert len(list(catalog.tables())) == 1

    def test_racing_create_view_has_one_winner(self):
        catalog = Catalog()
        results = _run_threads(
            8, lambda i: catalog.create_view("v", f"SELECT {i}")
        )
        errors = [r for r in results if isinstance(r, Exception)]
        assert len(errors) == 7
        winner = next(i for i, r in enumerate(results) if r is None)
        assert catalog.view_sql("v") == f"SELECT {winner}"

    def test_generation_never_loses_a_bump(self):
        # The plan cache's staleness stamp: every DDL/stats mutation must
        # advance ``generation()`` exactly once even under contention -- a
        # lost bump would let a cached plan outlive the change it raced.
        catalog = Catalog()
        catalog.create_table("t", _schema())
        start = catalog.generation()

        def work(i: int) -> None:
            for k in range(50):
                if i % 2 == 0:
                    catalog.invalidate_stats("t")
                else:
                    catalog.create_table(f"t_{i}_{k}", _schema())

        results = _run_threads(8, work)
        assert not any(isinstance(r, Exception) for r in results), results
        assert catalog.generation() == start + 8 * 50

    def test_generation_reads_are_monotonic_during_ddl(self):
        catalog = Catalog()
        catalog.create_table("t", _schema())

        def work(i: int) -> None:
            if i == 0:
                for k in range(200):
                    catalog.invalidate_stats("t")
                return
            last = -1
            for _ in range(200):
                seen = catalog.generation()
                assert seen >= last, "generation moved backwards"
                last = seen

        results = _run_threads(8, work)
        assert not any(isinstance(r, Exception) for r in results), results

    def test_stats_invalidation_is_never_lost(self):
        # Writers insert + invalidate; readers pull stats throughout.  At
        # the end one more invalidate + read must see the final row count
        # (a stale cache line would betray a lost invalidation).
        catalog = Catalog()
        table = catalog.create_table("t", _schema())

        def work(i: int) -> None:
            for k in range(50):
                if i % 2 == 0:  # writer
                    table.insert((i * 1000 + k, f"v{k}"))
                    catalog.invalidate_stats("t")
                else:  # reader
                    stats = catalog.stats("t")
                    assert 0 <= stats.row_count <= 8 * 50

        results = _run_threads(8, work)
        assert not any(isinstance(r, Exception) for r in results), results
        catalog.invalidate_stats("t")
        assert catalog.stats("t").row_count == len(table) == 4 * 50


class TestTableRaces:
    def test_concurrent_inserts_lose_nothing(self):
        catalog = Catalog()
        table = catalog.create_table("t", _schema())

        def work(i: int) -> None:
            for k in range(100):
                table.insert((i * 1000 + k, f"w{i}"))

        results = _run_threads(8, work)
        assert not any(isinstance(r, Exception) for r in results), results
        assert len(table) == 800
        ids = [row[0] for row in table.scan()]
        assert len(set(ids)) == 800  # no duplicated/lost row under the pk

    def test_create_index_during_inserts_is_complete(self):
        # DDL races data: whatever rows exist when the index becomes
        # visible were backfilled, and every later insert maintains it --
        # so after the dust settles the index must cover every row.
        catalog = Catalog()
        table = catalog.create_table("t", _schema())
        created = threading.Event()

        def work(i: int):
            if i == 0:
                index = table.create_index("t_val", ["val"])
                created.set()
                return index
            for k in range(200):
                table.insert((i * 1000 + k, f"w{i % 3}"))
            return None

        results = _run_threads(8, work)
        assert not any(isinstance(r, Exception) for r in results), results
        assert created.is_set()
        index = table.indexes["t_val"]
        indexed = sum(
            len(index.lookup(f"w{v}")) for v in range(3)
        )
        assert indexed == len(table) == 7 * 200

    def test_duplicate_key_race_admits_exactly_one(self):
        catalog = Catalog()
        table = catalog.create_table("t", _schema())
        results = _run_threads(8, lambda i: table.insert((42, f"w{i}")))
        errors = [r for r in results if isinstance(r, Exception)]
        assert len(errors) == 7  # unique pk: one winner, seven typed errors
        assert len(table) == 1

    def test_failed_insert_leaves_table_unchanged(self):
        catalog = Catalog()
        table = catalog.create_table("t", _schema())
        table.insert((1, "a"))
        with pytest.raises(Exception):
            table.insert((1, "dup"))
        assert len(table) == 1
        assert list(table.scan()) == [(1, "a")]
