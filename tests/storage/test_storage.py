"""Unit tests for schemas, tables, indexes, catalog and statistics."""

import pytest

from repro.errors import CatalogError, SchemaError
from repro.storage import (
    Catalog,
    Column,
    HashIndex,
    Schema,
    SortedIndex,
    Table,
    compute_table_stats,
)
from repro.types import SQLType


def emp_schema() -> Schema:
    return Schema(
        [
            Column("empno", SQLType.INT, nullable=False),
            Column("name", SQLType.STR),
            Column("building", SQLType.STR),
            Column("salary", SQLType.FLOAT),
        ],
        primary_key=["empno"],
    )


class TestSchema:
    def test_case_insensitive_lookup(self):
        s = emp_schema()
        assert s.position("EMPNO") == 0
        assert s.position("Building") == 2
        assert s.has_column("NAME")

    def test_duplicate_columns_rejected(self):
        with pytest.raises(SchemaError):
            Schema([Column("a", SQLType.INT), Column("A", SQLType.STR)])

    def test_unknown_pk_rejected(self):
        with pytest.raises(SchemaError):
            Schema([Column("a", SQLType.INT)], primary_key=["b"])

    def test_validate_row_arity(self):
        s = emp_schema()
        with pytest.raises(SchemaError):
            s.validate_row((1, "x", "b"))

    def test_validate_row_types(self):
        s = emp_schema()
        row = s.validate_row((1, "alice", "B1", 10))
        assert row == (1, "alice", "B1", 10.0)
        assert isinstance(row[3], float)

    def test_not_null_enforced(self):
        s = emp_schema()
        with pytest.raises(SchemaError):
            s.validate_row((None, "x", "B1", 1.0))

    def test_key_positions(self):
        assert emp_schema().key_positions() == (0,)


class TestTable:
    def make(self) -> Table:
        t = Table("emp", emp_schema())
        t.insert((1, "alice", "B1", 100.0))
        t.insert((2, "bob", "B1", 200.0))
        t.insert((3, "carol", "B2", None))
        return t

    def test_insert_and_scan(self):
        t = self.make()
        assert len(t) == 3
        assert list(t.scan())[1] == (2, "bob", "B1", 200.0)

    def test_primary_key_uniqueness(self):
        t = self.make()
        with pytest.raises(SchemaError):
            t.insert((1, "dup", "B9", 0.0))
        assert len(t) == 3  # failed insert left table unchanged

    def test_primary_key_not_null(self):
        t = self.make()
        with pytest.raises(SchemaError):
            t.insert((None, "x", "B1", 0.0))

    def test_hash_index_lookup(self):
        t = self.make()
        t.create_index("emp_building", ["building"])
        idx = t.indexes["emp_building"]
        assert sorted(idx.lookup("B1")) == [0, 1]
        assert idx.lookup("B9") == []
        assert idx.lookup(None) == []

    def test_sorted_index_range(self):
        t = self.make()
        t.create_index("emp_sal", ["salary"], kind="sorted")
        idx = t.indexes["emp_sal"]
        assert sorted(idx.range(low=100.0, high=200.0)) == [0, 1]
        assert sorted(idx.range(low=150.0)) == [1]
        assert sorted(idx.range(high=150.0)) == [0]
        # NULL salary row never matches a range
        assert 2 not in idx.range()

    def test_index_maintained_on_insert(self):
        t = self.make()
        t.create_index("emp_building", ["building"])
        t.insert((4, "dave", "B1", 50.0))
        assert sorted(t.indexes["emp_building"].lookup("B1")) == [0, 1, 3]

    def test_drop_index(self):
        t = self.make()
        t.create_index("emp_building", ["building"])
        t.drop_index("emp_building")
        assert "emp_building" not in t.indexes
        with pytest.raises(CatalogError):
            t.drop_index("emp_building")

    def test_cannot_drop_pk_index(self):
        t = self.make()
        with pytest.raises(CatalogError):
            t.drop_index("emp_pkey")

    def test_find_index(self):
        t = self.make()
        t.create_index("emp_building", ["building"])
        assert t.find_index(["building"]) is not None
        assert t.find_index(["empno"]) is not None  # pk index
        assert t.find_index(["salary"]) is None

    def test_duplicate_index_name_rejected(self):
        t = self.make()
        t.create_index("i1", ["building"])
        with pytest.raises(CatalogError):
            t.create_index("i1", ["salary"])


class TestIndexUnits:
    def test_hash_index_composite(self):
        idx = HashIndex("i", (0, 1))
        idx.insert(0, ("a", 1, "x"))
        idx.insert(1, ("a", 2, "y"))
        idx.insert(2, ("a", 1, "z"))
        assert sorted(idx.lookup(("a", 1))) == [0, 2]
        assert idx.lookup(("a", None)) == []

    def test_hash_unique_violation(self):
        idx = HashIndex("i", (0,), unique=True)
        idx.insert(0, ("k",))
        with pytest.raises(SchemaError):
            idx.insert(1, ("k",))

    def test_hash_unique_allows_multiple_nulls(self):
        idx = HashIndex("i", (0,), unique=True)
        idx.insert(0, (None,))
        idx.insert(1, (None,))  # SQL allows repeated NULLs in unique indexes

    def test_sorted_unique_violation(self):
        idx = SortedIndex("i", 0, unique=True)
        idx.insert(0, (5,))
        with pytest.raises(SchemaError):
            idx.insert(1, (5,))

    def test_sorted_bulk_load_matches_inserts(self):
        a = SortedIndex("a", 0)
        b = SortedIndex("b", 0)
        values = [3, 1, None, 2, 1]
        for rid, v in enumerate(values):
            a.insert(rid, (v,))
        b.bulk_load(enumerate(values))
        assert a.range() == b.range()
        assert a.lookup(1) == b.lookup(1)


class TestCatalog:
    def test_create_and_lookup(self):
        cat = Catalog()
        cat.create_table("emp", emp_schema())
        assert cat.has_table("EMP")
        assert cat.table("Emp").name == "emp"

    def test_duplicate_rejected(self):
        cat = Catalog()
        cat.create_table("emp", emp_schema())
        with pytest.raises(CatalogError):
            cat.create_table("EMP", emp_schema())

    def test_views(self):
        cat = Catalog()
        cat.create_view("v", "SELECT 1")
        assert cat.has_view("V")
        assert cat.view_sql("v") == "SELECT 1"
        with pytest.raises(CatalogError):
            cat.create_table("v", emp_schema())
        cat.drop_view("v")
        assert not cat.has_view("v")

    def test_drop_table(self):
        cat = Catalog()
        cat.create_table("emp", emp_schema())
        cat.drop_table("emp")
        with pytest.raises(CatalogError):
            cat.table("emp")

    def test_is_key(self):
        cat = Catalog()
        t = cat.create_table("emp", emp_schema())
        assert cat.is_key("emp", ["empno"])
        assert cat.is_key("emp", ["empno", "name"])  # superset of pk
        assert not cat.is_key("emp", ["building"])
        t.create_index("u_name", ["name"], unique=True)
        assert cat.is_key("emp", ["name"])


class TestStats:
    def test_column_stats(self):
        t = Table("emp", emp_schema())
        t.insert((1, "a", "B1", 10.0))
        t.insert((2, "b", "B1", None))
        t.insert((3, "c", "B2", 30.0))
        stats = compute_table_stats(t)
        assert stats.row_count == 3
        b = stats.column("building")
        assert b.n_distinct == 2
        assert b.n_null == 0
        assert (b.min_value, b.max_value) == ("B1", "B2")
        s = stats.column("salary")
        assert s.n_null == 1
        assert s.n_distinct == 2
        assert s.selectivity_eq(3) == pytest.approx((2 / 3) / 2)

    def test_stats_cache_invalidation(self):
        cat = Catalog()
        t = cat.create_table("emp", emp_schema())
        t.insert((1, "a", "B1", 10.0))
        s1 = cat.stats("emp")
        assert s1.row_count == 1
        assert cat.stats("emp") is s1  # cached
        t.insert((2, "b", "B2", 20.0))
        s2 = cat.stats("emp")
        assert s2.row_count == 2
