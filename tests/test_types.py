"""Unit tests for the SQL value model and three-valued logic."""

import pytest

from repro.errors import SchemaError
from repro.types import (
    ARITHMETIC,
    COMPARISONS,
    SQLType,
    is_true,
    sort_key,
    sql_add,
    sql_div,
    sql_eq,
    sql_ge,
    sql_gt,
    sql_le,
    sql_like,
    sql_lt,
    sql_mul,
    sql_ne,
    sql_sub,
    tv_and,
    tv_not,
    tv_or,
)


class TestTruthTables:
    def test_not(self):
        assert tv_not(True) is False
        assert tv_not(False) is True
        assert tv_not(None) is None

    @pytest.mark.parametrize(
        "a,b,expected",
        [
            (True, True, True),
            (True, False, False),
            (True, None, None),
            (False, False, False),
            (False, None, False),
            (None, None, None),
        ],
    )
    def test_and_symmetric(self, a, b, expected):
        assert tv_and(a, b) is expected
        assert tv_and(b, a) is expected

    @pytest.mark.parametrize(
        "a,b,expected",
        [
            (True, True, True),
            (True, False, True),
            (True, None, True),
            (False, False, False),
            (False, None, None),
            (None, None, None),
        ],
    )
    def test_or_symmetric(self, a, b, expected):
        assert tv_or(a, b) is expected
        assert tv_or(b, a) is expected

    def test_is_true_only_for_true(self):
        assert is_true(True)
        assert not is_true(False)
        assert not is_true(None)


class TestComparisons:
    def test_equality(self):
        assert sql_eq(1, 1) is True
        assert sql_eq(1, 2) is False
        assert sql_eq(None, 1) is None
        assert sql_eq(1, None) is None
        assert sql_eq(None, None) is None

    def test_inequality_with_null(self):
        assert sql_ne(1, 2) is True
        assert sql_ne(None, 2) is None

    def test_ordering(self):
        assert sql_lt(1, 2) is True
        assert sql_le(2, 2) is True
        assert sql_gt(3, 2) is True
        assert sql_ge(2, 3) is False
        assert sql_lt(None, 2) is None
        assert sql_gt(2, None) is None

    def test_numeric_cross_type(self):
        assert sql_eq(1, 1.0) is True
        assert sql_lt(1, 1.5) is True

    def test_string_comparison(self):
        assert sql_lt("apple", "banana") is True
        assert sql_eq("a", "a") is True

    def test_incomparable_types_raise(self):
        with pytest.raises(SchemaError):
            sql_eq(1, "one")
        with pytest.raises(SchemaError):
            sql_lt(True, 1)

    def test_comparison_registry_complete(self):
        for op in ("=", "<>", "!=", "<", "<=", ">", ">="):
            assert op in COMPARISONS


class TestArithmetic:
    def test_null_propagation(self):
        assert sql_add(None, 1) is None
        assert sql_sub(1, None) is None
        assert sql_mul(None, None) is None
        assert sql_div(None, 2) is None

    def test_basic(self):
        assert sql_add(2, 3) == 5
        assert sql_sub(2, 3) == -1
        assert sql_mul(2, 3) == 6
        assert sql_div(6, 3) == 2

    def test_division_by_zero_is_null(self):
        assert sql_div(1, 0) is None

    def test_registry(self):
        assert set(ARITHMETIC) == {"+", "-", "*", "/"}


class TestLike:
    @pytest.mark.parametrize(
        "value,pattern,expected",
        [
            ("BRASS", "BRASS", True),
            ("LARGE BRASS", "%BRASS", True),
            ("LARGE BRASS", "%BRASS%", True),
            ("BRASS PLATED", "BRASS%", True),
            ("COPPER", "%BRASS%", False),
            ("abc", "a_c", True),
            ("abc", "a_d", False),
            ("", "%", True),
            ("", "_", False),
            ("aXbXc", "a%b%c", True),
        ],
    )
    def test_patterns(self, value, pattern, expected):
        assert sql_like(value, pattern) is expected

    def test_null(self):
        assert sql_like(None, "%") is None
        assert sql_like("x", None) is None

    def test_non_string_raises(self):
        with pytest.raises(SchemaError):
            sql_like(1, "%")


class TestSQLType:
    def test_int(self):
        assert SQLType.INT.validate(5) == 5
        with pytest.raises(SchemaError):
            SQLType.INT.validate(5.0)
        with pytest.raises(SchemaError):
            SQLType.INT.validate(True)

    def test_float_coerces_int(self):
        assert SQLType.FLOAT.validate(5) == 5.0
        assert isinstance(SQLType.FLOAT.validate(5), float)
        with pytest.raises(SchemaError):
            SQLType.FLOAT.validate("5")

    def test_str_and_date(self):
        assert SQLType.STR.validate("x") == "x"
        assert SQLType.DATE.validate("1996-01-01") == "1996-01-01"
        with pytest.raises(SchemaError):
            SQLType.DATE.validate(19960101)

    def test_bool(self):
        assert SQLType.BOOL.validate(True) is True
        with pytest.raises(SchemaError):
            SQLType.BOOL.validate(1)

    def test_null_accepted_everywhere(self):
        for t in SQLType:
            assert t.validate(None) is None


class TestSortKey:
    def test_nulls_first(self):
        values = [3, None, 1, None, 2]
        ordered = sorted(values, key=sort_key)
        assert ordered == [None, None, 1, 2, 3]

    def test_mixed_type_total_order(self):
        values = ["b", 2, None, True, "a", 1.5]
        ordered = sorted(values, key=sort_key)
        assert ordered[0] is None
        assert ordered[1] is True  # booleans before numbers
        assert ordered[2:4] == [1.5, 2]
        assert ordered[4:] == ["a", "b"]
