"""Unit tests for the Metrics counters."""

from repro.exec import Metrics


def test_total_work_sums_row_operations():
    metrics = Metrics(
        rows_scanned=10, index_lookups=2, index_rows=5,
        rows_joined=7, rows_grouped=3,
    )
    assert metrics.total_work() == 27


def test_addition():
    a = Metrics(rows_scanned=1, subquery_invocations=2)
    b = Metrics(rows_scanned=3, boxes_recomputed=4)
    c = a + b
    assert c.rows_scanned == 4
    assert c.subquery_invocations == 2
    assert c.boxes_recomputed == 4
    # operands untouched
    assert a.rows_scanned == 1 and b.rows_scanned == 3


def test_as_dict_contains_every_counter():
    metrics = Metrics()
    d = metrics.as_dict()
    for key in (
        "subquery_invocations", "rows_scanned", "index_lookups",
        "index_rows", "rows_joined", "rows_grouped", "boxes_recomputed",
        "rows_output", "total_work",
    ):
        assert key in d


def test_fresh_metrics_are_zero():
    assert Metrics().total_work() == 0
