"""Unit tests for the Metrics counters."""

from repro.exec import Metrics


def test_total_work_sums_row_operations():
    metrics = Metrics(
        rows_scanned=10, index_lookups=2, index_rows=5,
        rows_joined=7, rows_grouped=3,
    )
    assert metrics.total_work() == 27


def test_addition():
    a = Metrics(rows_scanned=1, subquery_invocations=2)
    b = Metrics(rows_scanned=3, boxes_recomputed=4)
    c = a + b
    assert c.rows_scanned == 4
    assert c.subquery_invocations == 2
    assert c.boxes_recomputed == 4
    # operands untouched
    assert a.rows_scanned == 1 and b.rows_scanned == 3


def test_as_dict_contains_every_counter():
    metrics = Metrics()
    d = metrics.as_dict()
    for key in (
        "subquery_invocations", "rows_scanned", "index_lookups",
        "index_rows", "rows_joined", "rows_grouped", "boxes_recomputed",
        "rows_output", "total_work",
    ):
        assert key in d


def test_fresh_metrics_are_zero():
    assert Metrics().total_work() == 0


def test_materialize_tracks_high_water_mark():
    metrics = Metrics()
    metrics.materialize(10)
    metrics.materialize(5)
    assert metrics.rows_materialized == 15
    assert metrics.peak_rows_materialized == 15
    # A later drop in the cumulative count (e.g. after a reset of the
    # running total) must not lower the recorded peak.
    metrics.rows_materialized = 3
    metrics.materialize(1)
    assert metrics.rows_materialized == 4
    assert metrics.peak_rows_materialized == 15


def test_as_dict_reports_materialization_counters():
    metrics = Metrics()
    metrics.materialize(7)
    d = metrics.as_dict()
    assert d["rows_materialized"] == 7
    assert d["peak_rows_materialized"] == 7


def test_addition_takes_max_of_peaks():
    a = Metrics(rows_materialized=10, peak_rows_materialized=10)
    b = Metrics(rows_materialized=4, peak_rows_materialized=4)
    c = a + b
    # Cumulative totals add; the high-water mark is per-execution.
    assert c.rows_materialized == 14
    assert c.peak_rows_materialized == 10


def test_materialization_does_not_change_total_work():
    # total_work() feeds the benchmark tables, whose numbers are pinned;
    # the memory counters report alongside it without perturbing it.
    metrics = Metrics(rows_scanned=10)
    before = metrics.total_work()
    metrics.materialize(1000)
    assert metrics.total_work() == before
