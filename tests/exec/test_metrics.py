"""Unit tests for the Metrics counters."""

from repro.exec import Metrics


def test_total_work_sums_row_operations():
    metrics = Metrics(
        rows_scanned=10, index_lookups=2, index_rows=5,
        rows_joined=7, rows_grouped=3,
    )
    assert metrics.total_work() == 27


def test_addition():
    a = Metrics(rows_scanned=1, subquery_invocations=2)
    b = Metrics(rows_scanned=3, boxes_recomputed=4)
    c = a + b
    assert c.rows_scanned == 4
    assert c.subquery_invocations == 2
    assert c.boxes_recomputed == 4
    # operands untouched
    assert a.rows_scanned == 1 and b.rows_scanned == 3


def test_as_dict_contains_every_counter():
    metrics = Metrics()
    d = metrics.as_dict()
    for key in (
        "subquery_invocations", "rows_scanned", "index_lookups",
        "index_rows", "rows_joined", "rows_grouped", "boxes_recomputed",
        "rows_output", "total_work",
    ):
        assert key in d


def test_fresh_metrics_are_zero():
    assert Metrics().total_work() == 0


def test_materialize_tracks_high_water_mark():
    metrics = Metrics()
    metrics.materialize(10)
    metrics.materialize(5)
    assert metrics.rows_materialized == 15
    assert metrics.peak_rows_materialized == 15
    # A later drop in the cumulative count (e.g. after a reset of the
    # running total) must not lower the recorded peak.
    metrics.rows_materialized = 3
    metrics.materialize(1)
    assert metrics.rows_materialized == 4
    assert metrics.peak_rows_materialized == 15


def test_as_dict_reports_materialization_counters():
    metrics = Metrics()
    metrics.materialize(7)
    d = metrics.as_dict()
    assert d["rows_materialized"] == 7
    assert d["peak_rows_materialized"] == 7


def test_addition_takes_max_of_peaks():
    a = Metrics(rows_materialized=10, peak_rows_materialized=10)
    b = Metrics(rows_materialized=4, peak_rows_materialized=4)
    c = a + b
    # Cumulative totals add; the high-water mark is per-execution.
    assert c.rows_materialized == 14
    assert c.peak_rows_materialized == 10


def test_materialization_does_not_change_total_work():
    # total_work() feeds the benchmark tables, whose numbers are pinned;
    # the memory counters report alongside it without perturbing it.
    metrics = Metrics(rows_scanned=10)
    before = metrics.total_work()
    metrics.materialize(1000)
    assert metrics.total_work() == before


def test_release_lowers_live_but_not_peak():
    metrics = Metrics()
    metrics.materialize(10)
    metrics.release(10)
    assert metrics.live_rows_materialized == 0
    assert metrics.rows_freed == 10
    assert metrics.peak_rows_materialized == 10


def test_peak_diverges_from_cumulative_for_sequential_builds():
    # Two hash builds that never coexist: cumulative materialisation is
    # their sum, but the memory high-water mark is only the larger one.
    metrics = Metrics()
    metrics.materialize(100)
    metrics.release(100)
    metrics.materialize(60)
    metrics.release(60)
    assert metrics.rows_materialized == 160
    assert metrics.peak_rows_materialized == 100


def test_peak_tracks_overlapping_materialisations():
    metrics = Metrics()
    metrics.materialize(40)   # build A live
    metrics.materialize(30)   # build B live alongside it
    metrics.release(40)
    metrics.materialize(10)
    assert metrics.peak_rows_materialized == 70
    assert metrics.live_rows_materialized == 40


def test_addition_covers_every_field():
    # __add__ iterates dataclasses.fields with a declared merge policy;
    # every counter must survive a round trip (guards against a future
    # field silently defaulting to zero in merged results).
    from dataclasses import fields

    a = Metrics(**{f.name: 2 for f in fields(Metrics)})
    b = Metrics(**{f.name: 3 for f in fields(Metrics)})
    c = a + b
    for f in fields(Metrics):
        expected = 3 if f.metadata.get("merge") == "max" else 5
        assert getattr(c, f.name) == expected, f.name


def test_sum_field_names_exclude_high_water_marks():
    from dataclasses import fields

    from repro.exec.metrics import SUM_FIELD_NAMES

    assert "peak_rows_materialized" not in SUM_FIELD_NAMES
    assert "rows_freed" in SUM_FIELD_NAMES
    assert set(SUM_FIELD_NAMES) | {"peak_rows_materialized"} == {
        f.name for f in fields(Metrics)
    }
    metrics = Metrics(rows_scanned=4, rows_freed=2)
    assert metrics.sum_values() == tuple(
        getattr(metrics, name) for name in SUM_FIELD_NAMES
    )


def test_query_execution_frees_every_materialised_row(empdept_catalog):
    """End-to-end conservation: at query teardown every transient
    materialisation (hash builds, work tables, CSE caches) was released,
    so the live count returns to zero and the peak is a true high-water
    mark rather than the cumulative total."""
    from repro import Database, Strategy

    db = Database(empdept_catalog)
    sql = (
        "SELECT name FROM dept D WHERE D.budget < 10000 AND D.num_emps > "
        "(SELECT count(*) FROM emp E WHERE E.building = D.building)"
    )
    for strategy in (Strategy.NESTED_ITERATION, Strategy.KIM,
                     Strategy.DAYAL, Strategy.MAGIC):
        metrics = db.execute(sql, strategy=strategy).metrics
        assert metrics.rows_freed == metrics.rows_materialized, strategy
        assert metrics.live_rows_materialized == 0
        assert metrics.peak_rows_materialized <= metrics.rows_materialized
        if metrics.rows_materialized:
            assert metrics.peak_rows_materialized > 0
