"""Tests for CASE expressions and view-cycle detection."""

import pytest

from repro import Database, Strategy
from repro.errors import BindError


@pytest.fixture
def db(empdept_catalog) -> Database:
    return Database(empdept_catalog)


class TestCase:
    def test_basic_dispatch(self, db):
        result = db.execute(
            """
            SELECT name,
                   CASE WHEN budget < 1000 THEN 'tiny'
                        WHEN budget < 10000 THEN 'normal'
                        ELSE 'rich' END
            FROM dept ORDER BY name
            """
        )
        classified = dict(result.rows)
        assert classified["d_low"] == "tiny"
        assert classified["sales"] == "normal"
        assert classified["rich"] == "rich"

    def test_missing_else_yields_null(self, db):
        result = db.execute(
            "SELECT CASE WHEN 1 = 2 THEN 'x' END"
        )
        assert result.rows == [(None,)]

    def test_unknown_condition_skipped(self, db):
        result = db.execute(
            "SELECT CASE WHEN NULL = 1 THEN 'a' ELSE 'b' END"
        )
        assert result.rows == [("b",)]

    def test_case_in_where(self, db):
        result = db.execute(
            """
            SELECT count(*) FROM emp
            WHERE CASE WHEN building = 'B1' THEN salary > 100
                       ELSE salary > 90 END
            """
        )
        # B1: alice(100? no, >100: bob only) -> bob; others: erin(95)
        assert result.scalar() == 2

    def test_case_in_aggregate(self, db):
        result = db.execute(
            "SELECT sum(CASE WHEN building = 'B1' THEN 1 ELSE 0 END) FROM emp"
        )
        assert result.scalar() == 3

    def test_case_with_decorrelation(self, db):
        sql = """
            SELECT d.name FROM dept d
            WHERE d.num_emps > (SELECT sum(CASE WHEN e.salary > 90
                                                THEN 1 ELSE 0 END)
                                FROM emp e WHERE e.building = d.building)
        """
        from collections import Counter

        ni = Counter(db.execute(sql).rows)
        assert Counter(db.execute(sql, strategy=Strategy.MAGIC).rows) == ni

    def test_case_roundtrips_through_printer(self):
        from repro.sql.parser import parse_expression
        from repro.sql.printer import expr_to_sql

        text = "CASE WHEN a = 1 THEN 2 ELSE 3 END"
        parsed = parse_expression(text)
        assert parse_expression(expr_to_sql(parsed)) == parsed


class TestViewCycles:
    def test_direct_cycle_detected(self, db):
        db.catalog.create_view("v_self", "SELECT * FROM v_self")
        with pytest.raises(BindError, match="cyclic view"):
            db.execute("SELECT * FROM v_self")

    def test_mutual_cycle_detected(self, db):
        db.catalog.create_view("v_a", "SELECT * FROM v_b")
        db.catalog.create_view("v_b", "SELECT * FROM v_a")
        with pytest.raises(BindError, match="cyclic view"):
            db.execute("SELECT * FROM v_a")

    def test_diamond_is_fine(self, db):
        db.execute_script(
            "CREATE VIEW base_v AS SELECT building FROM dept;"
            "CREATE VIEW left_v AS SELECT building FROM base_v;"
            "CREATE VIEW right_v AS SELECT building FROM base_v;"
        )
        result = db.execute(
            "SELECT count(*) FROM left_v l, right_v r "
            "WHERE l.building = r.building"
        )
        assert result.scalar() > 0
