"""Unit tests for the aggregate implementations."""

import pytest

from repro.errors import ExecutionError
from repro.exec.aggregates import (
    agg_avg,
    agg_count,
    agg_count_star,
    agg_max,
    agg_min,
    agg_sum,
    compute_aggregate,
)


class TestIndividualAggregates:
    def test_count_star(self):
        assert agg_count_star(0) == 0
        assert agg_count_star(5) == 5

    def test_count_skips_nulls(self):
        assert agg_count([1, None, 2, None]) == 2
        assert agg_count([]) == 0
        assert agg_count([None, None]) == 0

    def test_count_distinct(self):
        assert agg_count([1, 1, 2, None, 2], distinct=True) == 2

    def test_sum(self):
        assert agg_sum([1, 2, 3]) == 6
        assert agg_sum([1, None, 3]) == 4
        assert agg_sum([]) is None
        assert agg_sum([None]) is None

    def test_sum_distinct(self):
        assert agg_sum([1, 1, 2], distinct=True) == 3

    def test_avg(self):
        assert agg_avg([2, 4]) == 3
        assert agg_avg([2, None, 4]) == 3
        assert agg_avg([]) is None

    def test_avg_distinct(self):
        assert agg_avg([2, 2, 4], distinct=True) == 3

    def test_min_max(self):
        assert agg_min([3, 1, 2]) == 1
        assert agg_max([3, 1, 2]) == 3
        assert agg_min([None, 5]) == 5
        assert agg_min([]) is None
        assert agg_max([None]) is None

    def test_min_max_strings(self):
        assert agg_min(["b", "a"]) == "a"
        assert agg_max(["b", "a"]) == "b"


class TestDispatch:
    def test_count_star_dispatch(self):
        assert compute_aggregate("count", None, 7, False) == 7

    def test_star_only_valid_for_count(self):
        with pytest.raises(ExecutionError):
            compute_aggregate("sum", None, 7, False)

    def test_unknown_aggregate(self):
        with pytest.raises(ExecutionError):
            compute_aggregate("median", [1], 1, False)

    @pytest.mark.parametrize(
        "func,expected",
        [("count", 2), ("sum", 5), ("avg", 2.5), ("min", 2), ("max", 3)],
    )
    def test_each_function(self, func, expected):
        assert compute_aggregate(func, [2, 3, None], 3, False) == expected
