"""Executor edge paths: set operations, outer joins, grouping corners."""

import pytest

from repro import Database, Strategy


@pytest.fixture
def db(empdept_catalog) -> Database:
    return Database(empdept_catalog)


class TestSetOpEdges:
    def test_union_all_with_empty_arm(self, db):
        result = db.execute(
            "SELECT building FROM dept WHERE budget < 0 "
            "UNION ALL SELECT building FROM emp WHERE building = 'B3'"
        )
        assert result.rows == [("B3",)]

    def test_union_dedupes_nulls(self, db):
        db.execute_script("INSERT INTO dept VALUES ('dx', 1, 1, NULL)")
        db.execute_script("INSERT INTO emp VALUES (99, 'x', NULL, 1)")
        result = db.execute(
            "SELECT building FROM dept UNION SELECT building FROM emp"
        )
        nulls = [r for r in result.rows if r[0] is None]
        assert len(nulls) == 1

    def test_intersect_with_duplicates_dedupes(self, db):
        result = db.execute(
            "SELECT building FROM dept INTERSECT SELECT building FROM dept"
        )
        assert sorted(result.rows) == [("B1",), ("B2",), ("B9",)]

    def test_chained_setops(self, db):
        result = db.execute(
            "SELECT building FROM dept UNION SELECT building FROM emp "
            "EXCEPT SELECT building FROM emp WHERE building = 'B3'"
        )
        assert ("B3",) not in result.rows


class TestOuterJoinEdges:
    def test_loj_with_true_condition(self, db):
        # Cross-style LOJ (condition references both sides, non-equi).
        result = db.execute(
            "SELECT d.name, e.name FROM dept d LEFT OUTER JOIN emp e "
            "ON d.budget < e.salary * 10"
        )
        assert len(result.rows) >= len(db.catalog.table("dept"))

    def test_loj_null_padding_width(self, db):
        result = db.execute(
            "SELECT e.empno, e.name, e.salary FROM dept d "
            "LEFT OUTER JOIN emp e ON d.building = e.building "
            "WHERE d.name = 'd_low'"
        )
        assert result.rows == [(None, None, None)]

    def test_nested_joins_as_loj_side(self, db):
        result = db.execute(
            "SELECT d.name FROM (dept d JOIN emp e ON d.building = e.building) "
            "LEFT OUTER JOIN emp e2 ON e.salary < e2.salary "
            "WHERE d.name = 'research'"
        )
        assert len(result.rows) > 0

    def test_loj_then_groupby(self, db):
        # Dayal-style shape written by hand.
        result = db.execute(
            """
            SELECT d.name, count(e.empno) FROM dept d
            LEFT OUTER JOIN emp e ON d.building = e.building
            GROUP BY d.name ORDER BY d.name
            """
        )
        counts = dict(result.rows)
        assert counts["d_low"] == 0  # count of NULLs is 0
        assert counts["sales"] == 3


class TestGroupingEdges:
    def test_group_by_expression(self, db):
        result = db.execute(
            "SELECT salary / 100, count(*) FROM emp GROUP BY salary / 100"
        )
        assert sum(c for _, c in result.rows) == 6

    def test_having_on_group_expr(self, db):
        result = db.execute(
            "SELECT building FROM emp GROUP BY building "
            "HAVING building <> 'B3'"
        )
        assert sorted(result.rows) == [("B1",), ("B2",)]

    def test_aggregate_of_constant(self, db):
        assert db.execute("SELECT sum(1) FROM emp").scalar() == 6

    def test_avg_returns_float(self, db):
        value = db.execute("SELECT avg(num_emps) FROM dept").scalar()
        assert isinstance(value, float)

    def test_group_key_from_outer_join_null(self, db):
        result = db.execute(
            """
            SELECT e.building, count(*) FROM dept d
            LEFT OUTER JOIN emp e ON d.building = e.building
            GROUP BY e.building
            """
        )
        null_groups = [r for r in result.rows if r[0] is None]
        assert len(null_groups) == 1  # d_low's unmatched row groups as NULL


class TestOrderingEdges:
    def test_limit_zero(self, db):
        assert db.execute("SELECT name FROM dept LIMIT 0").rows == []

    def test_limit_beyond_rows(self, db):
        assert len(db.execute("SELECT name FROM dept LIMIT 99").rows) == 7

    def test_order_by_hidden_column_not_returned(self, db):
        result = db.execute("SELECT name FROM dept ORDER BY budget")
        assert all(len(row) == 1 for row in result.rows)
        assert result.columns == ["name"]

    def test_order_by_expression_over_from(self, db):
        result = db.execute(
            "SELECT name FROM emp ORDER BY salary * -1 LIMIT 1"
        )
        assert result.rows == [("bob",)]  # highest salary first

    def test_order_distinct_hidden_rejected(self, db):
        from repro.errors import BindError

        with pytest.raises(BindError):
            db.execute("SELECT DISTINCT name FROM dept ORDER BY budget")

    def test_order_by_on_union(self, db):
        result = db.execute(
            "SELECT building FROM dept UNION SELECT building FROM emp "
            "ORDER BY building DESC LIMIT 2"
        )
        assert result.rows == [("B9",), ("B3",)]


class TestStrategiesOnEdgeShapes:
    def test_decorrelate_with_case_and_order(self, db):
        sql = """
            SELECT d.name,
                   CASE WHEN d.num_emps > (SELECT count(*) FROM emp e
                                           WHERE e.building = d.building)
                        THEN 'over' ELSE 'ok' END AS status
            FROM dept d ORDER BY d.name
        """
        ni = db.execute(sql).rows
        magic = db.execute(sql, strategy=Strategy.MAGIC).rows
        assert ni == magic
        assert ("d_low", "over") in ni


class TestBagSetOps:
    def test_intersect_all_min_multiplicity(self, db):
        db.execute_script(
            "CREATE TABLE ba (v INT); CREATE TABLE bb (v INT);"
            "INSERT INTO ba VALUES (1), (1), (1), (2);"
            "INSERT INTO bb VALUES (1), (1), (3)"
        )
        rows = db.execute(
            "SELECT v FROM ba INTERSECT ALL SELECT v FROM bb"
        ).rows
        assert sorted(rows) == [(1,), (1,)]

    def test_except_all_subtracts_multiplicity(self, db):
        db.execute_script(
            "CREATE TABLE ea (v INT); CREATE TABLE eb (v INT);"
            "INSERT INTO ea VALUES (1), (1), (1), (2);"
            "INSERT INTO eb VALUES (1), (3)"
        )
        rows = db.execute(
            "SELECT v FROM ea EXCEPT ALL SELECT v FROM eb"
        ).rows
        assert sorted(rows) == [(1,), (1,), (2,)]

    def test_bag_setop_in_correlated_subquery(self, db):
        from collections import Counter
        from repro import Strategy

        sql = """
            SELECT d.name, dt.c FROM dept d, DT(c) AS
              (SELECT count(v) FROM DV(v) AS
                ((SELECT e.salary FROM emp e WHERE e.building = d.building)
                 EXCEPT ALL
                 (SELECT e2.salary FROM emp e2
                  WHERE e2.building = d.building AND e2.salary > 100)))
        """
        ni = Counter(db.execute(sql).rows)
        assert Counter(db.execute(sql, strategy=Strategy.MAGIC).rows) == ni
