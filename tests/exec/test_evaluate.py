"""Unit tests for the row-context expression evaluator."""

import pytest

from repro.errors import ExecutionError
from repro.exec.evaluate import Env, evaluate, predicate_holds
from repro.exec.executor import ExecutionContext
from repro.qgm.expr import ColumnRef
from repro.qgm.model import BaseTableBox, Quantifier
from repro.sql import ast
from repro.sql.parser import parse_expression
from repro.storage import Catalog, Column, Schema
from repro.types import SQLType


@pytest.fixture
def ctx() -> ExecutionContext:
    catalog = Catalog()
    catalog.create_table(
        "t", Schema([Column("a", SQLType.INT), Column("b", SQLType.STR)])
    )
    box = BaseTableBox("t", ["a", "b"])
    context = ExecutionContext(catalog, box)
    context._test_box = box
    return context


def bound_env(ctx, row):
    q = Quantifier("q", ctx._test_box)
    return Env({q: row}), q


def const(ctx, text):
    """Evaluate a constant SQL expression."""
    return evaluate(parse_expression(text), Env(), ctx)


class TestConstants:
    def test_arithmetic(self, ctx):
        assert const(ctx, "1 + 2 * 3") == 7
        assert const(ctx, "10 / 4") == 2.5
        assert const(ctx, "-(2 + 3)") == -5

    def test_null_propagation(self, ctx):
        assert const(ctx, "1 + NULL") is None
        assert const(ctx, "-(NULL)") is None
        assert const(ctx, "NULL = NULL") is None

    def test_concat(self, ctx):
        assert const(ctx, "'a' || 'b'") == "ab"
        assert const(ctx, "'a' || NULL") is None

    def test_boolean_short_circuit(self, ctx):
        assert const(ctx, "1 = 1 OR 1 / 0 = 1") is True
        # AND short-circuits on FALSE
        assert const(ctx, "1 = 2 AND 1 = 1") is False

    def test_between_3vl(self, ctx):
        assert const(ctx, "2 BETWEEN 1 AND 3") is True
        assert const(ctx, "NULL BETWEEN 1 AND 3") is None
        assert const(ctx, "2 NOT BETWEEN 1 AND 3") is False

    def test_in_list_3vl(self, ctx):
        assert const(ctx, "1 IN (1, 2)") is True
        assert const(ctx, "3 IN (1, NULL)") is None  # unknown, not false
        assert const(ctx, "3 NOT IN (1, NULL)") is None
        assert const(ctx, "3 IN (1, 2)") is False

    def test_is_null(self, ctx):
        assert const(ctx, "NULL IS NULL") is True
        assert const(ctx, "1 IS NOT NULL") is True

    def test_functions(self, ctx):
        assert const(ctx, "coalesce(NULL, NULL, 5)") == 5
        assert const(ctx, "coalesce(NULL, NULL)") is None
        assert const(ctx, "abs(-3)") == 3
        assert const(ctx, "nullif(1, 1)") is None
        assert const(ctx, "nullif(1, 2)") == 1
        assert const(ctx, "upper('ab')") == "AB"
        assert const(ctx, "lower('AB')") == "ab"

    def test_unknown_function(self, ctx):
        with pytest.raises(ExecutionError):
            const(ctx, "bogus(1)")

    def test_like(self, ctx):
        assert const(ctx, "'BRASS' LIKE '%RAS%'") is True
        assert const(ctx, "'BRASS' NOT LIKE 'X%'") is True


class TestColumnRefs:
    def test_lookup(self, ctx):
        env, q = bound_env(ctx, (42, "hi"))
        assert evaluate(ColumnRef(q, "a"), env, ctx) == 42
        assert evaluate(ColumnRef(q, "b"), env, ctx) == "hi"

    def test_unbound_quantifier_raises(self, ctx):
        _, q = bound_env(ctx, (1, "x"))
        with pytest.raises(ExecutionError):
            evaluate(ColumnRef(q, "a"), Env(), ctx)

    def test_unknown_column_raises(self, ctx):
        env, q = bound_env(ctx, (1, "x"))
        with pytest.raises(ExecutionError):
            evaluate(ColumnRef(q, "zz"), env, ctx)

    def test_env_bind_is_persistent_copy(self, ctx):
        env, q = bound_env(ctx, (1, "x"))
        env2 = env.bind(Quantifier("other", ctx._test_box), (2, "y"))
        assert q in env2.bindings and q in env.bindings
        assert len(env2.bindings) == 2 and len(env.bindings) == 1

    def test_env_with_value(self, ctx):
        env = Env()
        env2 = env.with_value(123, "cached")
        assert env2.values[123] == "cached"
        assert 123 not in env.values


class TestPredicateSemantics:
    def test_unknown_is_not_true(self, ctx):
        expr = parse_expression("NULL = 1")
        assert predicate_holds(expr, Env(), ctx) is False

    def test_aggregate_outside_groupby_raises(self, ctx):
        with pytest.raises(ExecutionError):
            const(ctx, "count(*)")

    def test_null_safe_comparison(self, ctx):
        expr = ast.Comparison("<=>", ast.Literal(None), ast.Literal(None))
        assert evaluate(expr, Env(), ctx) is True
