"""End-to-end execution tests (nested iteration strategy)."""

import pytest

from repro import Database
from repro.errors import ExecutionError


@pytest.fixture
def db(empdept_catalog) -> Database:
    return Database(empdept_catalog)


def rows(db, sql, **kwargs):
    return sorted(db.execute(sql, **kwargs).rows)


class TestBasics:
    def test_constant_select(self, db):
        assert db.execute("SELECT 1 + 2 AS x").rows == [(3,)]

    def test_projection_and_filter(self, db):
        result = rows(db, "SELECT name FROM dept WHERE budget < 1000")
        assert result == [("d_low",), ("d_null",)]

    def test_arithmetic_and_null(self, db):
        result = db.execute(
            "SELECT name, num_emps * 2 FROM dept WHERE name = 'd_null'"
        )
        assert result.rows == [("d_null", None)]

    def test_three_valued_where_drops_unknown(self, db):
        # d_null has NULL num_emps: NULL > 0 is UNKNOWN -> filtered out.
        result = rows(db, "SELECT name FROM dept WHERE num_emps > 0")
        assert ("d_null",) not in result

    def test_distinct(self, db):
        result = rows(db, "SELECT DISTINCT building FROM dept")
        assert result == [("B1",), ("B2",), ("B9",)]

    def test_order_by_limit(self, db):
        result = db.execute(
            "SELECT name FROM dept ORDER BY budget DESC LIMIT 2"
        )
        assert result.rows == [("rich",), ("ops",)]

    def test_order_by_nulls_first(self, db):
        result = db.execute("SELECT num_emps FROM dept ORDER BY num_emps")
        assert result.rows[0] == (None,)

    def test_in_list_and_between(self, db):
        result = rows(
            db,
            "SELECT name FROM dept WHERE building IN ('B1', 'B9') "
            "AND budget BETWEEN 400 AND 6000",
        )
        assert result == [("d_low",), ("sales",)]

    def test_like(self, db):
        result = rows(db, "SELECT name FROM dept WHERE name LIKE 'd_%'")
        assert result == [("d_low",), ("d_null",)]

    def test_is_null(self, db):
        assert rows(db, "SELECT name FROM dept WHERE num_emps IS NULL") == [
            ("d_null",)
        ]
        assert len(rows(db, "SELECT name FROM dept WHERE num_emps IS NOT NULL")) == 6

    def test_coalesce(self, db):
        result = db.execute(
            "SELECT coalesce(num_emps, 0) FROM dept WHERE name = 'd_null'"
        )
        assert result.rows == [(0,)]


class TestJoins:
    def test_implicit_equijoin(self, db):
        result = rows(
            db,
            "SELECT d.name, e.name FROM dept d, emp e "
            "WHERE d.building = e.building AND d.name = 'research'",
        )
        assert result == [("research", "dan"), ("research", "erin")]

    def test_cross_join_cardinality(self, db):
        result = db.execute("SELECT 1 FROM dept, emp")
        assert len(result.rows) == 7 * 6

    def test_explicit_join(self, db):
        result = rows(
            db,
            "SELECT e.name FROM dept d JOIN emp e ON d.building = e.building "
            "WHERE d.name = 'sales'",
        )
        assert result == [("alice",), ("bob",), ("carol",)]

    def test_left_outer_join_preserves(self, db):
        result = rows(
            db,
            "SELECT d.name, e.name FROM dept d LEFT OUTER JOIN emp e "
            "ON d.building = e.building WHERE d.name = 'd_low'",
        )
        assert result == [("d_low", None)]

    def test_left_outer_join_matches(self, db):
        result = db.execute(
            "SELECT d.name, e.name FROM dept d LEFT OUTER JOIN emp e "
            "ON d.building = e.building"
        )
        # 5 depts in B1/B2 match 3 or 2 emps; d_low and d_null's B2... count:
        # B1 depts (sales, support, rich) x 3 emps + B2 depts (research, ops,
        # d_null) x 2 emps + d_low unmatched = 9 + 6 + 1
        assert len(result.rows) == 16

    def test_outer_join_non_equi_condition(self, db):
        result = db.execute(
            "SELECT d.name, e.name FROM dept d LEFT OUTER JOIN emp e "
            "ON d.building = e.building AND e.salary > 100 "
            "WHERE d.name = 'research'"
        )
        assert result.rows == [("research", None)]


class TestAggregation:
    def test_count_star(self, db):
        assert db.execute("SELECT count(*) FROM emp").scalar() == 6

    def test_count_column_skips_nulls(self, db):
        assert db.execute("SELECT count(num_emps) FROM dept").scalar() == 6

    def test_sum_avg_min_max(self, db):
        result = db.execute(
            "SELECT sum(salary), avg(salary), min(salary), max(salary) FROM emp"
        )
        assert result.rows == [(555.0, 92.5, 70.0, 120.0)]

    def test_empty_aggregates(self, db):
        result = db.execute(
            "SELECT count(*), sum(salary), min(salary) FROM emp WHERE building = 'zz'"
        )
        assert result.rows == [(0, None, None)]

    def test_group_by(self, db):
        result = rows(db, "SELECT building, count(*) FROM emp GROUP BY building")
        assert result == [("B1", 3), ("B2", 2), ("B3", 1)]

    def test_group_by_having(self, db):
        result = rows(
            db,
            "SELECT building, count(*) AS c FROM emp GROUP BY building "
            "HAVING count(*) > 1",
        )
        assert result == [("B1", 3), ("B2", 2)]

    def test_count_distinct(self, db):
        assert db.execute("SELECT count(DISTINCT building) FROM dept").scalar() == 3

    def test_aggregate_expression(self, db):
        value = db.execute("SELECT 0.2 * avg(salary) FROM emp").scalar()
        assert value == pytest.approx(0.2 * 92.5)

    def test_group_by_null_key(self, db):
        result = db.execute("SELECT num_emps, count(*) FROM dept GROUP BY num_emps")
        null_groups = [r for r in result.rows if r[0] is None]
        assert null_groups == [(None, 1)]


class TestSetOps:
    def test_union_all(self, db):
        result = db.execute(
            "SELECT building FROM dept UNION ALL SELECT building FROM emp"
        )
        assert len(result.rows) == 13

    def test_union_distinct(self, db):
        result = rows(
            db, "SELECT building FROM dept UNION SELECT building FROM emp"
        )
        assert result == [("B1",), ("B2",), ("B3",), ("B9",)]

    def test_intersect(self, db):
        result = rows(
            db, "SELECT building FROM dept INTERSECT SELECT building FROM emp"
        )
        assert result == [("B1",), ("B2",)]

    def test_except(self, db):
        result = rows(
            db, "SELECT building FROM dept EXCEPT SELECT building FROM emp"
        )
        assert result == [("B9",)]


class TestSubqueries:
    PAPER_QUERY = """
        Select D.name From Dept D
        Where D.budget < 10000 and D.num_emps >
          (Select Count(*) From Emp E Where D.building = E.building)
    """

    def test_uncorrelated_scalar(self, db):
        result = rows(
            db,
            "SELECT name FROM emp WHERE salary > (SELECT avg(salary) FROM emp)",
        )
        assert result == [("alice",), ("bob",), ("erin",)]

    def test_paper_example_count_bug_row_included(self, db):
        result = rows(db, self.PAPER_QUERY)
        # sales: 4 > 3 yes; support: 1 > 3 no; research: 3 > 2 yes;
        # ops: 2 > 2 no; d_low: 1 > 0 yes (the COUNT-bug row!);
        # rich filtered by budget; d_null: NULL > 0 unknown -> no.
        assert result == [("d_low",), ("research",), ("sales",)]

    def test_invocation_count(self, db):
        result = db.execute(self.PAPER_QUERY)
        # One invocation per low-budget department (6 of 7).
        assert result.metrics.subquery_invocations == 6

    def test_exists(self, db):
        result = rows(
            db,
            "SELECT d.name FROM dept d WHERE EXISTS "
            "(SELECT 1 FROM emp e WHERE e.building = d.building)",
        )
        assert ("d_low",) not in result
        assert len(result) == 6

    def test_not_exists(self, db):
        result = rows(
            db,
            "SELECT d.name FROM dept d WHERE NOT EXISTS "
            "(SELECT 1 FROM emp e WHERE e.building = d.building)",
        )
        assert result == [("d_low",)]

    def test_in_subquery(self, db):
        result = rows(
            db,
            "SELECT name FROM dept WHERE building IN "
            "(SELECT building FROM emp WHERE salary > 90)",
        )
        # emps with salary > 90 are in B1 (alice,bob) and B2 (erin)
        assert len(result) == 6

    def test_not_in_subquery_with_nulls(self, db):
        db.execute_script("INSERT INTO emp VALUES (7, 'gail', NULL, 10)")
        result = rows(
            db,
            "SELECT name FROM dept WHERE building NOT IN "
            "(SELECT building FROM emp)",
        )
        # NULL in the subquery result makes NOT IN UNKNOWN everywhere.
        assert result == []

    def test_any_all(self, db):
        result = rows(
            db,
            "SELECT name FROM emp WHERE salary > ALL "
            "(SELECT salary FROM emp WHERE building = 'B2')",
        )
        assert result == [("alice",), ("bob",)]
        result = rows(
            db,
            "SELECT name FROM emp WHERE salary < ANY "
            "(SELECT salary FROM emp WHERE building = 'B2')",
        )
        assert result == [("carol",), ("dan",), ("frank",)]

    def test_all_over_empty_is_true(self, db):
        result = db.execute(
            "SELECT count(*) FROM emp WHERE salary > ALL "
            "(SELECT salary FROM emp WHERE building = 'zz')"
        )
        assert result.scalar() == 6

    def test_scalar_subquery_multiple_rows_errors(self, db):
        with pytest.raises(ExecutionError):
            db.execute("SELECT (SELECT building FROM emp) FROM dept")

    def test_scalar_subquery_in_select_list(self, db):
        result = rows(
            db,
            "SELECT d.name, (SELECT count(*) FROM emp e "
            "WHERE e.building = d.building) FROM dept d WHERE d.budget < 1000",
        )
        assert result == [("d_low", 0), ("d_null", 2)]

    def test_correlated_derived_table(self, db):
        result = rows(
            db,
            "SELECT d.name, dt.cnt FROM dept d, DT(cnt) AS "
            "(SELECT count(*) FROM emp e WHERE e.building = d.building) "
            "WHERE d.budget < 1000",
        )
        assert result == [("d_low", 0), ("d_null", 2)]

    def test_multi_level_correlation(self, db):
        result = rows(
            db,
            """
            SELECT d.name FROM dept d WHERE EXISTS (
              SELECT 1 FROM emp e WHERE e.building = d.building AND e.salary >=
                (SELECT max(e2.salary) FROM emp e2 WHERE e2.building = d.building)
            ) AND d.budget < 10000
            """,
        )
        # Every building with employees has a max earner; d_low has none.
        assert ("d_low",) not in result
        assert len(result) == 5

    def test_union_inside_correlated_subquery(self, db):
        result = rows(
            db,
            """
            SELECT d.name, dt.s FROM dept d, DT(s) AS
              (SELECT sum(bal) FROM DDT(bal) AS
                ((SELECT e.salary FROM emp e WHERE e.building = d.building)
                 UNION ALL
                 (SELECT e2.salary FROM emp e2 WHERE e2.building = d.building)))
            WHERE d.name = 'research'
            """,
        )
        assert result == [("research", 350.0)]


class TestDDLDML:
    def test_create_insert_select(self):
        db = Database()
        db.execute_script(
            """
            CREATE TABLE t (id INT PRIMARY KEY, v TEXT);
            INSERT INTO t VALUES (1, 'a'), (2, 'b');
            INSERT INTO t (id) VALUES (3);
            """
        )
        result = sorted(db.execute("SELECT id, v FROM t").rows)
        assert result == [(1, "a"), (2, "b"), (3, None)]

    def test_create_index_and_drop(self):
        db = Database()
        db.execute_script(
            "CREATE TABLE t (id INT, v TEXT); "
            "CREATE INDEX t_v ON t (v); DROP INDEX t_v ON t"
        )
        assert "t_v" not in db.catalog.table("t").indexes

    def test_view_roundtrip(self, db):
        db.execute_script(
            "CREATE VIEW lowdept AS SELECT name, building FROM dept "
            "WHERE budget < 10000"
        )
        result = db.execute("SELECT count(*) FROM lowdept")
        assert result.scalar() == 6


class TestMetrics:
    def test_seq_scan_counts_rows(self, db):
        metrics = db.execute("SELECT * FROM emp").metrics
        assert metrics.rows_scanned == 6

    def test_index_used_for_correlated_lookup(self, db):
        metrics = db.execute(TestSubqueries.PAPER_QUERY).metrics
        # The emp_building index serves each subquery invocation: no repeated
        # full scans of EMP.
        assert metrics.index_lookups == 6
        assert metrics.rows_scanned <= 7  # one dept scan only

    def test_index_lookup_without_index_falls_back(self, db):
        db.catalog.table("emp").drop_index("emp_building")
        result = db.execute(TestSubqueries.PAPER_QUERY)
        assert sorted(result.rows) == [("d_low",), ("research",), ("sales",)]
        # Now every invocation rescans EMP (hash build per invocation).
        assert result.metrics.rows_scanned >= 6 * 6
