"""Tests for the ``python -m repro`` command-line interface."""

import subprocess
import sys

import pytest

from repro.__main__ import main


def run_cli(*args, input_text=None):
    return subprocess.run(
        [sys.executable, "-m", "repro", *args],
        capture_output=True, text=True, input=input_text, timeout=300,
    )


@pytest.fixture
def script(tmp_path):
    path = tmp_path / "demo.sql"
    path.write_text(
        """
        CREATE TABLE t (id INT PRIMARY KEY, v TEXT);
        INSERT INTO t VALUES (1, 'a'), (2, 'b');
        SELECT v FROM t WHERE id = 2;
        """
    )
    return path


class TestRun:
    def test_runs_script(self, script):
        result = run_cli("run", str(script))
        assert result.returncode == 0
        assert "b" in result.stdout
        assert "(1 rows" in result.stdout

    def test_strategy_flag(self, script):
        result = run_cli("run", str(script), "--strategy", "magic")
        assert result.returncode == 0

    def test_unknown_strategy(self, script):
        result = run_cli("run", str(script), "--strategy", "nope")
        assert result.returncode != 0
        assert "unknown strategy" in result.stderr


class TestExplain:
    def test_explain_with_schema(self, script):
        result = run_cli(
            "explain",
            "SELECT v FROM t WHERE id > (SELECT count(*) FROM t)",
            "--db", str(script), "--strategy", "magic",
        )
        assert result.returncode == 0
        assert "SELECT" in result.stdout


class TestShell:
    def test_shell_session(self):
        session = (
            "CREATE TABLE t (a INT);\n"
            "INSERT INTO t VALUES (1), (2);\n"
            "SELECT count(*) FROM t;\n"
            "\\strategy magic\n"
            "SELECT a FROM t WHERE a > 1;\n"
            "\\q\n"
        )
        result = run_cli("shell", input_text=session)
        assert result.returncode == 0
        assert "strategy = Mag" in result.stdout
        assert "(1 rows" in result.stdout

    def test_shell_reports_errors(self):
        result = run_cli("shell", input_text="SELECT nope FROM nada;\n\\q\n")
        assert result.returncode == 0
        assert "error:" in result.stdout


class TestFigures:
    def test_figures_subset_in_process(self, capsys):
        # In-process to keep it fast; only the cheapest figure.
        code = main(["figures", "--scale", "0.003", "--only", "figure9"])
        out = capsys.readouterr().out
        assert "Figure 9" in out
        assert "Table 1" in out
        assert code == 0


class TestReport:
    def test_report_markdown_in_process(self, tmp_path, capsys):
        code = main([
            "report", "--scale", "0.003", "--only", "figure9",
            "--out", str(tmp_path / "report.md"),
        ])
        assert code == 0
        text = (tmp_path / "report.md").read_text()
        assert "# Complex Query Decorrelation" in text
        assert "## Table 1" in text
        assert "## Figure 9" in text
        assert "## Section 6" in text
        assert "## Ablation" in text
        assert "| NI |" in text
