"""Tests for the ``python -m repro`` command-line interface."""

import subprocess
import sys

import pytest

from repro.__main__ import main


def run_cli(*args, input_text=None):
    return subprocess.run(
        [sys.executable, "-m", "repro", *args],
        capture_output=True, text=True, input=input_text, timeout=300,
    )


@pytest.fixture
def script(tmp_path):
    path = tmp_path / "demo.sql"
    path.write_text(
        """
        CREATE TABLE t (id INT PRIMARY KEY, v TEXT);
        INSERT INTO t VALUES (1, 'a'), (2, 'b');
        SELECT v FROM t WHERE id = 2;
        """
    )
    return path


class TestRun:
    def test_runs_script(self, script):
        result = run_cli("run", str(script))
        assert result.returncode == 0
        assert "b" in result.stdout
        assert "(1 rows" in result.stdout

    def test_strategy_flag(self, script):
        result = run_cli("run", str(script), "--strategy", "magic")
        assert result.returncode == 0

    def test_unknown_strategy(self, script):
        result = run_cli("run", str(script), "--strategy", "nope")
        assert result.returncode != 0
        assert "unknown strategy" in result.stderr


class TestExplain:
    def test_explain_with_schema(self, script):
        result = run_cli(
            "explain",
            "SELECT v FROM t WHERE id > (SELECT count(*) FROM t)",
            "--db", str(script), "--strategy", "magic",
        )
        assert result.returncode == 0
        assert "SELECT" in result.stdout


class TestShell:
    def test_shell_session(self):
        session = (
            "CREATE TABLE t (a INT);\n"
            "INSERT INTO t VALUES (1), (2);\n"
            "SELECT count(*) FROM t;\n"
            "\\strategy magic\n"
            "SELECT a FROM t WHERE a > 1;\n"
            "\\q\n"
        )
        result = run_cli("shell", input_text=session)
        assert result.returncode == 0
        assert "strategy = Mag" in result.stdout
        assert "(1 rows" in result.stdout

    def test_shell_reports_errors(self):
        result = run_cli("shell", input_text="SELECT nope FROM nada;\n\\q\n")
        assert result.returncode == 0
        assert "error:" in result.stdout


class TestFigures:
    def test_figures_subset_in_process(self, capsys):
        # In-process to keep it fast; only the cheapest figure.
        code = main(["figures", "--scale", "0.003", "--only", "figure9"])
        out = capsys.readouterr().out
        assert "Figure 9" in out
        assert "Table 1" in out
        assert code == 0


class TestReport:
    def test_report_markdown_in_process(self, tmp_path, capsys):
        code = main([
            "report", "--scale", "0.003", "--only", "figure9",
            "--out", str(tmp_path / "report.md"),
        ])
        assert code == 0
        text = (tmp_path / "report.md").read_text()
        assert "# Complex Query Decorrelation" in text
        assert "## Table 1" in text
        assert "## Figure 9" in text
        assert "## Section 6" in text
        assert "## Ablation" in text
        assert "| NI |" in text


@pytest.fixture
def correlated_script(tmp_path):
    """A small correlated-subquery workload for the guardrail flags."""
    path = tmp_path / "corr.sql"
    path.write_text(
        """
        CREATE TABLE dept (name TEXT PRIMARY KEY, building TEXT, num_emps INT);
        CREATE TABLE emp (empno INT PRIMARY KEY, building TEXT);
        INSERT INTO dept VALUES ('d1', 'b1', 2), ('d2', 'b2', 0);
        INSERT INTO emp VALUES (1, 'b1'), (2, 'b1'), (3, 'b2');
        SELECT name FROM dept D WHERE D.num_emps >
            (SELECT count(*) FROM emp E WHERE E.building = D.building);
        """
    )
    return path


class TestGuardrailFlags:
    def test_timeout_exits_124(self, correlated_script):
        result = run_cli("run", str(correlated_script), "--timeout", "0")
        assert result.returncode == 124
        assert "guardrail:" in result.stderr
        assert "timeout" in result.stderr

    def test_max_rows_exits_125_with_metrics(self, correlated_script):
        result = run_cli("run", str(correlated_script), "--max-rows", "1")
        assert result.returncode == 125
        assert "max_rows_scanned" in result.stderr
        assert "work at trip time" in result.stderr
        assert "rows_scanned" in result.stderr

    def test_generous_budgets_run_clean(self, correlated_script):
        result = run_cli(
            "run", str(correlated_script),
            "--timeout", "300", "--max-rows", "1000000",
        )
        assert result.returncode == 0
        assert "(0 rows" in result.stdout  # d1 has exactly num_emps matches

    def test_faults_flag_injects_typed_error(self, correlated_script):
        result = run_cli(
            "run", str(correlated_script), "--faults", "1:storage.scan=1",
        )
        assert result.returncode == 1
        assert "FaultInjectedError" in result.stderr
        assert "storage.scan" in result.stderr

    def test_bad_faults_spec_is_rejected(self, correlated_script):
        result = run_cli(
            "run", str(correlated_script), "--faults", "nonsense",
        )
        assert result.returncode != 0
        assert "--faults" in result.stderr

    def test_faults_runs_are_deterministic(self, correlated_script):
        args = ("run", str(correlated_script),
                "--faults", "9:storage.scan=0.2,exec.join=0.1")
        first = run_cli(*args)
        second = run_cli(*args)
        assert first.returncode == second.returncode
        assert first.stdout == second.stdout
        assert first.stderr == second.stderr

    def test_fallback_prints_degradation(self, correlated_script):
        result = run_cli(
            "run", str(correlated_script),
            "--strategy", "magic", "--fallback",
            "--faults", "0:rewrite.strategy=0.3",
        )
        assert result.returncode == 0
        assert "-- degraded 'magic' -> 'ni'" in result.stdout
        assert "FaultInjectedError" in result.stdout
