"""Tests for the ``python -m repro`` command-line interface."""

import subprocess
import sys

import pytest

from repro.__main__ import main


def run_cli(*args, input_text=None):
    return subprocess.run(
        [sys.executable, "-m", "repro", *args],
        capture_output=True, text=True, input=input_text, timeout=300,
    )


@pytest.fixture
def script(tmp_path):
    path = tmp_path / "demo.sql"
    path.write_text(
        """
        CREATE TABLE t (id INT PRIMARY KEY, v TEXT);
        INSERT INTO t VALUES (1, 'a'), (2, 'b');
        SELECT v FROM t WHERE id = 2;
        """
    )
    return path


class TestRun:
    def test_runs_script(self, script):
        result = run_cli("run", str(script))
        assert result.returncode == 0
        assert "b" in result.stdout
        assert "(1 rows" in result.stdout

    def test_strategy_flag(self, script):
        result = run_cli("run", str(script), "--strategy", "magic")
        assert result.returncode == 0

    def test_unknown_strategy(self, script):
        result = run_cli("run", str(script), "--strategy", "nope")
        assert result.returncode != 0
        assert "unknown strategy" in result.stderr


class TestExplain:
    def test_explain_with_schema(self, script):
        result = run_cli(
            "explain",
            "SELECT v FROM t WHERE id > (SELECT count(*) FROM t)",
            "--db", str(script), "--strategy", "magic",
        )
        assert result.returncode == 0
        assert "SELECT" in result.stdout


class TestShell:
    def test_shell_session(self):
        session = (
            "CREATE TABLE t (a INT);\n"
            "INSERT INTO t VALUES (1), (2);\n"
            "SELECT count(*) FROM t;\n"
            "\\strategy magic\n"
            "SELECT a FROM t WHERE a > 1;\n"
            "\\q\n"
        )
        result = run_cli("shell", input_text=session)
        assert result.returncode == 0
        assert "strategy = Mag" in result.stdout
        assert "(1 rows" in result.stdout

    def test_shell_reports_errors(self):
        result = run_cli("shell", input_text="SELECT nope FROM nada;\n\\q\n")
        assert result.returncode == 0
        assert "error:" in result.stdout


class TestFigures:
    def test_figures_subset_in_process(self, capsys):
        # In-process to keep it fast; only the cheapest figure.
        code = main(["figures", "--scale", "0.003", "--only", "figure9"])
        out = capsys.readouterr().out
        assert "Figure 9" in out
        assert "Table 1" in out
        assert code == 0


class TestReport:
    def test_report_markdown_in_process(self, tmp_path, capsys):
        code = main([
            "report", "--scale", "0.003", "--only", "figure9",
            "--out", str(tmp_path / "report.md"),
        ])
        assert code == 0
        text = (tmp_path / "report.md").read_text()
        assert "# Complex Query Decorrelation" in text
        assert "## Table 1" in text
        assert "## Figure 9" in text
        assert "## Section 6" in text
        assert "## Ablation" in text
        assert "| NI |" in text


class TestParallel:
    def test_simulator_mode_in_process(self, capsys):
        code = main([
            "parallel", "--workers", "3", "--depts", "12", "--emps", "60",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "simulated section 6 @ 3 nodes" in out
        assert "NI/decorrelated makespan ratio" in out

    def test_real_mode_writes_history_and_calibration(
        self, tmp_path, capsys
    ):
        history = tmp_path / "hist.jsonl"
        report_json = tmp_path / "calibration.json"
        code = main([
            "parallel", "--real", "--workers", "2",
            "--depts", "12", "--emps", "60",
            "--history", str(history), "--json", str(report_json),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "messages exact: True" in out
        assert "answers agree: True" in out
        assert report_json.exists()
        lines = history.read_text().splitlines()
        assert len(lines) == 3  # ni + decorrelated + calibration records

    def test_bad_faults_spec_exits_nonzero(self):
        result = run_cli("parallel", "--real", "--faults", "nonsense")
        assert result.returncode != 0
        assert "--faults" in result.stderr


class TestWorkerSoakCLI:
    def test_real_workers_chaos_soak_in_process(self, tmp_path, capsys):
        events = tmp_path / "events.jsonl"
        code = main([
            "soak", "--real-workers", "--workers", "3", "--epochs", "2",
            "--faults", "5:worker.crash=0.2", "--no-history",
            "--events-out", str(events),
            "--json", str(tmp_path / "report.json"),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "worker soak: all invariants held" in out
        assert "worker.spawned" in out
        assert events.exists()


@pytest.fixture
def correlated_script(tmp_path):
    """A small correlated-subquery workload for the guardrail flags."""
    path = tmp_path / "corr.sql"
    path.write_text(
        """
        CREATE TABLE dept (name TEXT PRIMARY KEY, building TEXT, num_emps INT);
        CREATE TABLE emp (empno INT PRIMARY KEY, building TEXT);
        INSERT INTO dept VALUES ('d1', 'b1', 2), ('d2', 'b2', 0);
        INSERT INTO emp VALUES (1, 'b1'), (2, 'b1'), (3, 'b2');
        SELECT name FROM dept D WHERE D.num_emps >
            (SELECT count(*) FROM emp E WHERE E.building = D.building);
        """
    )
    return path


class TestGuardrailFlags:
    def test_timeout_exits_124(self, correlated_script):
        result = run_cli("run", str(correlated_script), "--timeout", "0")
        assert result.returncode == 124
        assert "guardrail:" in result.stderr
        assert "timeout" in result.stderr

    def test_max_rows_exits_125_with_metrics(self, correlated_script):
        result = run_cli("run", str(correlated_script), "--max-rows", "1")
        assert result.returncode == 125
        assert "max_rows_scanned" in result.stderr
        assert "work at trip time" in result.stderr
        assert "rows_scanned" in result.stderr

    def test_generous_budgets_run_clean(self, correlated_script):
        result = run_cli(
            "run", str(correlated_script),
            "--timeout", "300", "--max-rows", "1000000",
        )
        assert result.returncode == 0
        assert "(0 rows" in result.stdout  # d1 has exactly num_emps matches

    def test_faults_flag_injects_typed_error(self, correlated_script):
        result = run_cli(
            "run", str(correlated_script), "--faults", "1:storage.scan=1",
        )
        assert result.returncode == 1
        assert "FaultInjectedError" in result.stderr
        assert "storage.scan" in result.stderr

    def test_bad_faults_spec_is_rejected(self, correlated_script):
        result = run_cli(
            "run", str(correlated_script), "--faults", "nonsense",
        )
        assert result.returncode != 0
        assert "--faults" in result.stderr

    def test_faults_runs_are_deterministic(self, correlated_script):
        args = ("run", str(correlated_script),
                "--faults", "9:storage.scan=0.2,exec.join=0.1")
        first = run_cli(*args)
        second = run_cli(*args)
        assert first.returncode == second.returncode
        assert first.stdout == second.stdout
        assert first.stderr == second.stderr

    def test_fallback_prints_degradation(self, correlated_script):
        result = run_cli(
            "run", str(correlated_script),
            "--strategy", "magic", "--fallback",
            "--faults", "0:rewrite.strategy=0.3",
        )
        assert result.returncode == 0
        assert "-- degraded 'magic' -> 'ni'" in result.stdout
        assert "FaultInjectedError" in result.stdout


class TestExplainAnalyze:
    def test_analyze_named_query_with_trace_out(self, tmp_path, capsys):
        out = tmp_path / "trace.json"
        code = main([
            "explain", "q2", "--tpcd", "0.003", "--analyze",
            "--strategy", "magic", "--trace-out", str(out),
        ])
        text = capsys.readouterr().out
        assert code == 0
        assert "(actual: calls=" in text
        assert "Rewrite timeline:" in text
        assert "Per-operator breakdown:" in text
        assert "reconcile exactly" in text
        assert out.exists()

    def test_analyze_with_db_script(self, correlated_script, capsys):
        code = main([
            "explain",
            "SELECT name FROM dept D WHERE D.num_emps > "
            "(SELECT count(*) FROM emp E WHERE E.building = D.building)",
            "--db", str(correlated_script), "--analyze",
        ])
        assert code == 0
        assert "(actual: calls=" in capsys.readouterr().out

    def test_named_query_requires_tpcd(self):
        with pytest.raises(SystemExit, match="--tpcd"):
            main(["explain", "q1"])

    def test_analyze_requires_data(self):
        with pytest.raises(SystemExit, match="needs data"):
            main(["explain", "SELECT 1", "--analyze"])


class TestTraceCheck:
    def test_exported_trace_passes(self, tmp_path, capsys):
        out = tmp_path / "trace.json"
        assert main([
            "explain", "empdept", "--tpcd", "0.003", "--analyze",
            "--trace-out", str(out),
        ]) == 0
        capsys.readouterr()
        assert main(["trace-check", str(out)]) == 0
        assert "OK (version 2" in capsys.readouterr().out

    def test_schema_violation_fails(self, tmp_path, capsys):
        out = tmp_path / "bad.json"
        out.write_text('{"version": 99, "spans": []}')
        assert main(["trace-check", str(out)]) == 1
        assert "version" in capsys.readouterr().err

    def test_unreadable_file_fails(self, tmp_path, capsys):
        assert main(["trace-check", str(tmp_path / "missing.json")]) == 1
        assert "cannot read" in capsys.readouterr().err


class TestStats:
    def test_json_stats_reconcile(self, capsys):
        import json

        code = main(["stats", "--scale", "0.003", "--workers", "2"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["submitted"] == 16  # 4 queries x 4 strategies
        assert (
            payload["completed"] + payload["failed"]
            == payload["submitted"]
        )
        assert payload["latency_histogram"]["count"] == 16
        assert payload["recent_traces"]
        assert payload["recent_traces"][0]["operators"]

    def test_prometheus_stats(self, capsys):
        code = main([
            "stats", "--scale", "0.003", "--workers", "2",
            "--format", "prometheus",
        ])
        assert code == 0
        text = capsys.readouterr().out
        assert "repro_queries_submitted_total 16" in text
        assert "# TYPE repro_query_latency_seconds histogram" in text
