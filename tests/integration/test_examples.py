"""Smoke tests: every example script runs to completion."""

import pathlib
import subprocess
import sys


EXAMPLES = pathlib.Path(__file__).resolve().parents[2] / "examples"


def run_example(name: str, *args: str) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout


def test_quickstart():
    out = run_example("quickstart.py")
    assert "subquery invocations: 0" in out
    assert "Magic decorrelation" in out


def test_count_bug():
    out = run_example("count_bug.py")
    assert "WRONG (COUNT bug!)" in out
    assert out.count("CORRECT") >= 2


def test_parallel_cluster():
    out = run_example("parallel_cluster.py")
    assert "decorrelated speedup over NI" in out


def test_tpcd_decorrelation_small_scale():
    out = run_example("tpcd_decorrelation.py", "0.003")
    assert "Table 1" in out
    assert "Figure 9" in out
    assert "not applicable" in out


def test_rewrite_walkthrough():
    out = run_example("rewrite_walkthrough.py")
    assert "INITIAL QGM" in out
    assert "graph validated" in out
    assert "CREATE VIEW" in out
