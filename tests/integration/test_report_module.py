"""Direct tests for the Markdown report generator."""

import pytest

from repro.bench.report import generate_report


@pytest.fixture(scope="module")
def report_text() -> str:
    return generate_report(
        scale_factor=0.003, figures=["figure9"],
        include_parallel=True, include_ablation=True,
    )


def test_structure(report_text):
    for heading in (
        "# Complex Query Decorrelation",
        "## Table 1",
        "## Figure 9",
        "## Section 6",
        "## Ablation",
    ):
        assert heading in report_text


def test_inapplicable_rows_preserved(report_text):
    assert "n/a — query is not linear" in report_text


def test_claims_rendered_with_verdicts(report_text):
    assert "✅" in report_text


def test_parallel_speedup_column(report_text):
    section = report_text.split("## Section 6")[1]
    assert "speedup" in section
    assert "x |" in section


def test_ablation_shows_both_modes(report_text):
    section = report_text.split("## Ablation")[1]
    assert "recompute (paper's Starburst)" in section
    assert "materialize" in section


def test_figure_filter_respected(report_text):
    assert "## Figure 5" not in report_text
    assert "## Figure 6" not in report_text
