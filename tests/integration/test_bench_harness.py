"""Integration tests for the benchmark harness and figure runners."""

import pytest

from repro import Database, Strategy
from repro.bench import (
    BenchResult,
    print_results,
    run_strategies,
    table1,
    warm,
)
from repro.bench.figures import figure9
from repro.tpcd import QUERY_3, load_tpcd

SCALE = 0.003


@pytest.fixture(scope="module")
def db() -> Database:
    return Database(load_tpcd(scale_factor=SCALE))


class TestHarness:
    def test_sweep_reports_applicability(self, db):
        results = run_strategies(db, QUERY_3)
        by_strategy = {r.strategy: r for r in results}
        assert by_strategy[Strategy.NESTED_ITERATION].applicable
        assert not by_strategy[Strategy.KIM].applicable
        assert "not linear" in by_strategy[Strategy.KIM].reason
        assert by_strategy[Strategy.MAGIC].applicable

    def test_all_applicable_row_counts_agree(self, db):
        results = run_strategies(db, QUERY_3)
        counts = {r.n_rows for r in results if r.applicable}
        assert len(counts) == 1

    def test_print_results_renders_table(self, db):
        results = run_strategies(db, QUERY_3)
        text = print_results("demo", results)
        assert "NI" in text and "Mag" in text
        assert "not applicable" in text

    def test_repeat_takes_minimum(self, db):
        results = run_strategies(
            db, QUERY_3, strategies=[Strategy.MAGIC], repeat=3
        )
        assert results[0].seconds > 0

    def test_warm_precomputes_stats(self, db):
        warm(db)
        # stats cached: a second call should return the same objects
        s1 = db.catalog.stats("lineitem")
        s2 = db.catalog.stats("lineitem")
        assert s1 is s2

    def test_bench_result_work(self):
        result = BenchResult(strategy=Strategy.MAGIC, applicable=True)
        assert result.work() == 0
        assert result.label == "Mag"


class TestFigureRunners:
    def test_table1_report(self):
        report = table1(SCALE)
        for name, (expected, actual) in report.items():
            assert expected == actual, name

    def test_figure9_runs_at_small_scale(self):
        report = figure9(scale_factor=SCALE)
        assert report.result(Strategy.MAGIC).applicable
        assert not report.result(Strategy.KIM).applicable
        text = report.print()
        assert "Figure 9" in text
        # shape claims hold even at tiny scale for figure 9
        assert report.shape_holds(), report.shape
