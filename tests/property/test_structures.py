"""Property-based tests for core data structures and the SQL printer."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sql.parser import parse_expression, parse_statement
from repro.sql.printer import expr_to_sql, to_sql
from repro.storage import HashIndex, SortedIndex
from repro.tpcd import TPCDGenerator
from repro.storage import Catalog
from repro.tpcd.schema import create_tpcd_schema
from repro.types import sort_key

values = st.one_of(st.none(), st.integers(-20, 20))


class TestSortedIndexEquivalence:
    @given(st.lists(values, max_size=40),
           st.integers(-20, 20), st.integers(-20, 20))
    def test_range_matches_naive_filter(self, data, low, high):
        if low > high:
            low, high = high, low
        index = SortedIndex("i", 0)
        index.bulk_load(enumerate(data))
        expected = sorted(
            i for i, v in enumerate(data) if v is not None and low <= v <= high
        )
        assert sorted(index.range(low=low, high=high)) == expected

    @given(st.lists(values, max_size=40), st.integers(-20, 20))
    def test_lookup_matches_naive(self, data, probe):
        index = SortedIndex("i", 0)
        index.bulk_load(enumerate(data))
        expected = sorted(i for i, v in enumerate(data) if v == probe)
        assert sorted(index.lookup(probe)) == expected

    @given(st.lists(values, max_size=40))
    def test_incremental_equals_bulk(self, data):
        a = SortedIndex("a", 0)
        b = SortedIndex("b", 0)
        for i, v in enumerate(data):
            a.insert(i, (v,))
        b.bulk_load(enumerate(data))
        assert a.range() == b.range()


class TestHashIndexEquivalence:
    @given(st.lists(values, max_size=40), values)
    def test_lookup_matches_naive(self, data, probe):
        index = HashIndex("i", (0,))
        for i, v in enumerate(data):
            index.insert(i, (v,))
        if probe is None:
            assert index.lookup(probe) == []
        else:
            expected = sorted(i for i, v in enumerate(data) if v == probe)
            assert sorted(index.lookup(probe)) == expected


class TestSortKeyTotalOrder:
    mixed = st.one_of(
        st.none(), st.booleans(), st.integers(-5, 5),
        st.floats(allow_nan=False, allow_infinity=False, width=16),
        st.text(max_size=3),
    )

    @given(st.lists(mixed, max_size=20))
    def test_sorting_is_stable_total_order(self, data):
        ordered = sorted(data, key=sort_key)
        # NULLs first
        n_nulls = sum(1 for v in data if v is None)
        assert all(v is None for v in ordered[:n_nulls])
        # Re-sorting is idempotent (total order)
        assert sorted(ordered, key=sort_key) == ordered


# -- parser round-trip -------------------------------------------------------

_literals = st.one_of(
    st.integers(0, 99),
    st.sampled_from(["'x'", "'it''s'", "NULL", "TRUE", "FALSE"]),
)
_names = st.sampled_from(["a", "t.b", "col1"])


@st.composite
def expressions(draw, depth=0):
    if depth > 2:
        return draw(st.one_of(_literals.map(str), _names))
    kind = draw(st.sampled_from(
        ["literal", "name", "binop", "cmp", "and", "or", "not", "func",
         "isnull", "between", "inlist", "agg"]
    ))
    sub = lambda: draw(expressions(depth=depth + 1))  # noqa: E731
    if kind == "literal":
        return str(draw(_literals))
    if kind == "name":
        return draw(_names)
    if kind == "binop":
        op = draw(st.sampled_from(["+", "-", "*", "/"]))
        return f"({sub()} {op} {sub()})"
    if kind == "cmp":
        op = draw(st.sampled_from(["=", "<>", "<", "<=", ">", ">="]))
        return f"({sub()} {op} {sub()})"
    if kind == "and":
        return f"({sub()} AND {sub()})"
    if kind == "or":
        return f"({sub()} OR {sub()})"
    if kind == "not":
        return f"(NOT {sub()})"
    if kind == "func":
        return f"coalesce({sub()}, {sub()})"
    if kind == "isnull":
        return f"({sub()} IS NULL)"
    if kind == "between":
        return f"({sub()} BETWEEN {sub()} AND {sub()})"
    if kind == "inlist":
        return f"({sub()} IN ({sub()}, {sub()}))"
    return f"count(DISTINCT {sub()})"


class TestPrinterRoundTrip:
    @settings(max_examples=200, deadline=None)
    @given(expressions())
    def test_expression_roundtrip(self, text):
        parsed = parse_expression(text)
        printed = expr_to_sql(parsed)
        reparsed = parse_expression(printed)
        assert reparsed == parsed, printed

    @settings(max_examples=60, deadline=None)
    @given(expressions(), expressions())
    def test_select_roundtrip(self, item, condition):
        sql = f"SELECT {item} AS v FROM t WHERE {condition}"
        parsed = parse_statement(sql)
        reparsed = parse_statement(to_sql(parsed))
        assert reparsed == parsed


class TestGeneratorDeterminism:
    @given(st.integers(0, 2**31), st.sampled_from([0.001, 0.002]))
    @settings(max_examples=10, deadline=None)
    def test_same_seed_same_data(self, seed, scale):
        def snapshot():
            catalog = Catalog()
            create_tpcd_schema(catalog, with_indexes=False)
            TPCDGenerator(scale_factor=scale, seed=seed).generate_all(catalog)
            return {
                t.name: list(t.rows)[:20] for t in catalog.tables()
            }

        assert snapshot() == snapshot()

    def test_different_seed_different_data(self):
        def rows(seed):
            catalog = Catalog()
            create_tpcd_schema(catalog, with_indexes=False)
            TPCDGenerator(scale_factor=0.002, seed=seed).generate_all(catalog)
            return list(catalog.table("suppliers").rows)

        assert rows(1) != rows(2)
