"""Tracing must be an observer: a traced run returns byte-identical rows
and ``Metrics`` to an untraced one, for every strategy on every paper
query -- and composes with ``REPRO_VALIDATE=1`` rewrite validation."""

import json

import pytest

from repro import Database, Strategy
from repro.errors import NotApplicableError
from repro.tpcd import QUERY_1, QUERY_2, QUERY_3, load_tpcd
from repro.trace import Tracer

STRATEGIES = (
    Strategy.NESTED_ITERATION, Strategy.KIM, Strategy.DAYAL, Strategy.MAGIC,
)
QUERIES = {"q1": QUERY_1, "q2": QUERY_2, "q3": QUERY_3}


@pytest.fixture(scope="module")
def tpcd_db() -> Database:
    db = Database(load_tpcd(scale_factor=0.002))
    # Warm table statistics so both measured runs plan identically.
    for table in db.catalog.tables():
        db.catalog.stats(table.name)
    return db


def _canonical(result) -> tuple[str, str]:
    """(rows, metrics) serialised for byte-level comparison."""
    return (
        json.dumps(result.rows, sort_keys=True, default=str),
        json.dumps(result.metrics.as_dict(), sort_keys=True),
    )


@pytest.mark.parametrize("strategy", STRATEGIES, ids=lambda s: s.value)
@pytest.mark.parametrize("name", sorted(QUERIES))
def test_traced_run_is_byte_identical(tpcd_db, name, strategy):
    sql = QUERIES[name]
    try:
        untraced = tpcd_db.execute(sql, strategy=strategy)
    except NotApplicableError:
        with pytest.raises(NotApplicableError):
            tpcd_db.execute(sql, strategy=strategy, tracer=Tracer())
        return
    tracer = Tracer()
    traced = tpcd_db.execute(sql, strategy=strategy, tracer=tracer)
    assert _canonical(traced) == _canonical(untraced)
    # The observer actually observed: the trace reproduces the totals.
    assert tracer.metric_totals() == {
        name_: value
        for name_, value in traced.metrics.as_dict().items()
        if name_ in tracer.metric_totals()
    }


def test_tracing_composes_with_validation(empdept_catalog, monkeypatch):
    """``REPRO_VALIDATE=1`` (per-step QGM validation) and tracing are
    orthogonal observers; enabling both changes nothing."""
    monkeypatch.setenv("REPRO_VALIDATE", "1")
    sql = (
        "SELECT name FROM dept D WHERE D.budget < 10000 AND D.num_emps > "
        "(SELECT count(*) FROM emp E WHERE E.building = D.building)"
    )
    plain_db = Database(empdept_catalog)
    untraced = plain_db.execute(sql, strategy=Strategy.MAGIC)
    tracer = Tracer()
    traced = plain_db.execute(sql, strategy=Strategy.MAGIC, tracer=tracer)
    assert _canonical(traced) == _canonical(untraced)
    assert any(span.kind == "rewrite" for span in tracer.roots)
