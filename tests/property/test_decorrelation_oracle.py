"""Property-based decorrelation oracle.

Random small tables (tiny value domains force duplicates, empty groups and
NULL bindings -- exactly the COUNT-bug / null-semantics corner cases) and a
family of correlated query templates. For every instance, nested iteration
is the reference semantics; magic decorrelation (both variants) must return
a multiset-identical answer, and Dayal's method must agree whenever it is
applicable.
"""

from collections import Counter

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Database, Strategy
from repro.errors import NotApplicableError
from repro.storage import Catalog, Column, Schema
from repro.types import SQLType

#: Small domains create collisions; None creates NULL-handling cases.
small_value = st.one_of(st.none(), st.integers(0, 3))

outer_rows = st.lists(
    st.tuples(st.integers(0, 3), small_value, small_value),
    min_size=0, max_size=8,
)
inner_rows = st.lists(
    st.tuples(small_value, small_value),
    min_size=0, max_size=10,
)


def build_db(t1_rows, t2_rows) -> Database:
    catalog = Catalog()
    catalog.create_table(
        "t1",
        Schema(
            [
                Column("pk", SQLType.INT, nullable=False),
                Column("a", SQLType.INT),
                Column("b", SQLType.INT),
            ],
            primary_key=["pk"],
        ),
    )
    catalog.create_table(
        "t2",
        Schema([Column("x", SQLType.INT), Column("y", SQLType.INT)]),
    )
    t1 = catalog.table("t1")
    for i, (_, a, b) in enumerate(t1_rows):
        t1.insert((i, a, b))
    catalog.table("t2").insert_many(t2_rows)
    return Database(catalog)


def compare(db: Database, sql: str, strategies, allow_not_applicable=()):
    oracle = Counter(db.execute(sql, strategy=Strategy.NESTED_ITERATION).rows)
    for strategy in strategies:
        try:
            answer = Counter(db.execute(sql, strategy=strategy).rows)
        except NotApplicableError:
            assert strategy in allow_not_applicable, strategy
            continue
        assert answer == oracle, (strategy, sql)


MAGIC_BOTH = (Strategy.MAGIC, Strategy.MAGIC_OPT)


class TestScalarAggregates:
    @settings(max_examples=60, deadline=None)
    @given(outer_rows, inner_rows,
           st.sampled_from(["count", "sum", "min", "max", "avg"]),
           st.sampled_from(["<", "<=", ">", ">=", "=", "<>"]))
    def test_scalar_agg_predicate(self, t1, t2, agg, op):
        db = build_db(t1, t2)
        argument = "*" if agg == "count" else "i.y"
        sql = f"""
            SELECT o.pk, o.a FROM t1 o
            WHERE o.b {op} (SELECT {agg}({argument}) FROM t2 i
                            WHERE i.x = o.a)
        """
        compare(db, sql, MAGIC_BOTH + (Strategy.DAYAL,))

    @settings(max_examples=40, deadline=None)
    @given(outer_rows, inner_rows)
    def test_scalar_agg_in_select_list(self, t1, t2):
        db = build_db(t1, t2)
        sql = """
            SELECT o.pk, (SELECT sum(i.y) FROM t2 i WHERE i.x = o.a)
            FROM t1 o
        """
        compare(db, sql, MAGIC_BOTH)

    @settings(max_examples=40, deadline=None)
    @given(outer_rows, inner_rows)
    def test_count_bug_shape(self, t1, t2):
        # The exact shape of the paper's section-2 example.
        db = build_db(t1, t2)
        sql = """
            SELECT o.pk FROM t1 o
            WHERE o.b > (SELECT count(*) FROM t2 i WHERE i.x = o.a)
        """
        compare(db, sql, MAGIC_BOTH + (Strategy.DAYAL,))

    @settings(max_examples=40, deadline=None)
    @given(outer_rows, inner_rows)
    def test_wrapped_aggregate(self, t1, t2):
        db = build_db(t1, t2)
        sql = """
            SELECT o.pk FROM t1 o
            WHERE o.b < (SELECT 2 * avg(i.y) + 1 FROM t2 i WHERE i.x = o.a)
        """
        compare(db, sql, MAGIC_BOTH + (Strategy.DAYAL,))

    @settings(max_examples=40, deadline=None)
    @given(outer_rows, inner_rows)
    def test_multi_column_correlation(self, t1, t2):
        db = build_db(t1, t2)
        sql = """
            SELECT o.pk FROM t1 o
            WHERE o.b >= (SELECT count(i.y) FROM t2 i
                          WHERE i.x = o.a AND i.y = o.b)
        """
        compare(db, sql, MAGIC_BOTH + (Strategy.DAYAL,))

    @settings(max_examples=40, deadline=None)
    @given(outer_rows, inner_rows)
    def test_non_equality_correlation(self, t1, t2):
        db = build_db(t1, t2)
        sql = """
            SELECT o.pk FROM t1 o
            WHERE o.b > (SELECT count(*) FROM t2 i WHERE i.x < o.a)
        """
        compare(
            db, sql, MAGIC_BOTH + (Strategy.DAYAL, Strategy.KIM),
            allow_not_applicable=(Strategy.KIM,),
        )


class TestMultiTableOuter:
    @settings(max_examples=40, deadline=None)
    @given(outer_rows, inner_rows)
    def test_correlation_from_two_outer_tables(self, t1, t2):
        # The subquery draws bindings from *two* outer quantifiers: the
        # supplementary table must cover the prefix joining both.
        db = build_db(t1, t2)
        sql = """
            SELECT o1.pk, o2.pk FROM t1 o1, t1 o2
            WHERE o1.pk <= o2.pk
              AND o2.b > (SELECT count(*) FROM t2 i
                          WHERE i.x = o1.a AND i.y = o2.a)
        """
        compare(db, sql, MAGIC_BOTH)

    @settings(max_examples=40, deadline=None)
    @given(outer_rows, inner_rows)
    def test_binding_from_first_of_three_quantifiers(self, t1, t2):
        db = build_db(t1, t2)
        sql = """
            SELECT o1.pk FROM t1 o1, t2 j, t1 o3
            WHERE o1.a = j.x AND o3.pk = o1.pk
              AND o1.b >= (SELECT count(*) FROM t2 i WHERE i.x = o1.a)
        """
        compare(db, sql, MAGIC_BOTH)


class TestExistentialUniversal:
    @settings(max_examples=40, deadline=None)
    @given(outer_rows, inner_rows, st.booleans())
    def test_exists(self, t1, t2, negated):
        db = build_db(t1, t2)
        keyword = "NOT EXISTS" if negated else "EXISTS"
        sql = f"""
            SELECT o.pk FROM t1 o
            WHERE {keyword} (SELECT 1 FROM t2 i WHERE i.x = o.a AND i.y >= 1)
        """
        compare(db, sql, MAGIC_BOTH)

    @settings(max_examples=40, deadline=None)
    @given(outer_rows, inner_rows, st.booleans())
    def test_in_subquery(self, t1, t2, negated):
        # NOT IN with NULLs in the subquery: the nastiest 3VL case.
        db = build_db(t1, t2)
        keyword = "NOT IN" if negated else "IN"
        sql = f"""
            SELECT o.pk FROM t1 o
            WHERE o.b {keyword} (SELECT i.y FROM t2 i WHERE i.x = o.a)
        """
        compare(db, sql, MAGIC_BOTH)

    @settings(max_examples=40, deadline=None)
    @given(outer_rows, inner_rows,
           st.sampled_from(["any", "all"]), st.sampled_from(["<", ">", "="]))
    def test_quantified(self, t1, t2, quantifier, op):
        db = build_db(t1, t2)
        sql = f"""
            SELECT o.pk FROM t1 o
            WHERE o.b {op} {quantifier} (SELECT i.y FROM t2 i WHERE i.x = o.a)
        """
        compare(db, sql, MAGIC_BOTH)


class TestTableExpressions:
    @settings(max_examples=40, deadline=None)
    @given(outer_rows, inner_rows)
    def test_correlated_derived_table(self, t1, t2):
        db = build_db(t1, t2)
        sql = """
            SELECT o.pk, dt.c FROM t1 o, DT(c) AS
              (SELECT count(*) FROM t2 i WHERE i.x = o.a)
        """
        compare(db, sql, MAGIC_BOTH)

    @settings(max_examples=30, deadline=None)
    @given(outer_rows, inner_rows)
    def test_union_all_subquery(self, t1, t2):
        # The paper's Query 3 shape.
        db = build_db(t1, t2)
        sql = """
            SELECT o.pk, dt.s FROM t1 o, DT(s) AS
              (SELECT sum(v) FROM DV(v) AS
                ((SELECT i.y FROM t2 i WHERE i.x = o.a)
                 UNION ALL
                 (SELECT i2.y + 1 FROM t2 i2 WHERE i2.x = o.b)))
        """
        compare(db, sql, MAGIC_BOTH)

    @settings(max_examples=30, deadline=None)
    @given(outer_rows, inner_rows)
    def test_multi_level_correlation(self, t1, t2):
        db = build_db(t1, t2)
        sql = """
            SELECT o.pk FROM t1 o
            WHERE o.b > (SELECT count(*) FROM t2 i WHERE i.x = o.a AND i.y <=
                           (SELECT max(i2.y) FROM t2 i2 WHERE i2.x = o.a))
        """
        compare(db, sql, MAGIC_BOTH)


class TestNestedShapes:
    @settings(max_examples=30, deadline=None)
    @given(outer_rows, inner_rows)
    def test_grouped_subquery_with_having(self, t1, t2):
        # Subquery with its own GROUP BY + HAVING wrapped in an aggregate.
        db = build_db(t1, t2)
        sql = """
            SELECT o.pk FROM t1 o
            WHERE o.b >= (SELECT max(c) FROM
                            (SELECT count(*) AS c FROM t2 i
                             WHERE i.x = o.a GROUP BY i.y
                             HAVING count(*) >= 1) AS g)
        """
        compare(db, sql, MAGIC_BOTH)

    @settings(max_examples=30, deadline=None)
    @given(outer_rows, inner_rows)
    def test_intersect_subquery(self, t1, t2):
        db = build_db(t1, t2)
        sql = """
            SELECT o.pk, dt.c FROM t1 o, DT(c) AS
              (SELECT count(v) FROM DV(v) AS
                ((SELECT i.y FROM t2 i WHERE i.x = o.a)
                 INTERSECT
                 (SELECT i2.y FROM t2 i2 WHERE i2.x = o.b)))
        """
        compare(db, sql, MAGIC_BOTH)

    @settings(max_examples=30, deadline=None)
    @given(outer_rows, inner_rows)
    def test_except_subquery(self, t1, t2):
        db = build_db(t1, t2)
        sql = """
            SELECT o.pk, dt.c FROM t1 o, DT(c) AS
              (SELECT count(v) FROM DV(v) AS
                ((SELECT i.y FROM t2 i WHERE i.x = o.a)
                 EXCEPT
                 (SELECT i2.y FROM t2 i2 WHERE i2.x = o.b)))
        """
        compare(db, sql, MAGIC_BOTH)

    @settings(max_examples=30, deadline=None)
    @given(outer_rows, inner_rows)
    def test_count_distinct_subquery(self, t1, t2):
        db = build_db(t1, t2)
        sql = """
            SELECT o.pk FROM t1 o
            WHERE o.b >= (SELECT count(DISTINCT i.y) FROM t2 i
                          WHERE i.x = o.a)
        """
        compare(db, sql, MAGIC_BOTH + (Strategy.DAYAL,))


class TestKimDivergesOnlyOnCountBug:
    @settings(max_examples=60, deadline=None)
    @given(outer_rows, inner_rows,
           st.sampled_from(["sum", "min", "max", "avg"]))
    def test_kim_correct_for_null_aggregates(self, t1, t2, agg):
        # For non-COUNT aggregates Kim's missing-group behaviour coincides
        # with NULL-comparison semantics: results must match.
        db = build_db(t1, t2)
        sql = f"""
            SELECT o.pk FROM t1 o
            WHERE o.b > (SELECT {agg}(i.y) FROM t2 i WHERE i.x = o.a)
        """
        compare(db, sql, (Strategy.KIM,))

    @settings(max_examples=60, deadline=None)
    @given(outer_rows, inner_rows)
    def test_kim_count_result_is_subset(self, t1, t2):
        # With COUNT, Kim may LOSE rows (the COUNT bug) but never invent or
        # duplicate them, and it only loses rows whose binding has no match.
        db = build_db(t1, t2)
        sql = """
            SELECT o.pk FROM t1 o
            WHERE o.b > (SELECT count(*) FROM t2 i WHERE i.x = o.a)
        """
        oracle = Counter(db.execute(sql).rows)
        kim = Counter(db.execute(sql, strategy=Strategy.KIM).rows)
        assert all(kim[row] <= oracle[row] for row in kim)
        inner_values = {r[0] for r in db.catalog.table("t2").rows}
        lost = oracle - kim
        for (pk,) in lost:
            a = db.catalog.table("t1").rows[pk][1]
            assert a not in inner_values or a is None
