"""Metamorphic fault-injection property (ISSUE 2 acceptance).

Under every injected-fault seed in a fixed sweep, every decorrelation
strategy must produce either the *identical answer* (the fault-free
reference -- injected faults fail queries, they never corrupt results) or
the *identical typed error class*
(:class:`~repro.errors.FaultInjectedError`), for the section-2 COUNT-bug
query and TPC-D Q1-Q3. The whole sweep must replay byte-identically: same
seed, same fault sites, same errors, same outcomes, run after run.

When ``REPRO_FAULTS`` is set (the CI fault matrix), its seed and rates are
used instead of the built-in sweep.
"""

import pytest

from repro import Database, FaultRegistry, Strategy
from repro.errors import FaultInjectedError, NotApplicableError, ReproError
from repro.tpcd import (
    EMP_DEPT_QUERY,
    QUERY_1,
    QUERY_2,
    QUERY_3,
    load_empdept,
    load_tpcd,
)

#: Fault rates exercised by the built-in sweep; any env-provided spec
#: (REPRO_FAULTS) takes precedence.
DEFAULT_SPEC = "storage.scan=0.05,exec.join=0.02,exec.group=0.05,rewrite.strategy=0.02"
DEFAULT_SEEDS = (1, 2, 3)

STRATEGIES = (
    Strategy.NESTED_ITERATION,
    Strategy.KIM,
    Strategy.DAYAL,
    Strategy.MAGIC,
    Strategy.MAGIC_OPT,
)


def _registries():
    """The fault registries of the sweep (env override first)."""
    from_env = FaultRegistry.from_env()
    if from_env is not None:
        return [from_env.replica()]
    return [
        FaultRegistry.parse(f"{seed}:{DEFAULT_SPEC}")
        for seed in DEFAULT_SEEDS
    ]


@pytest.fixture(scope="module")
def catalogs():
    return {
        "empdept": load_empdept(),
        "tpcd": load_tpcd(scale_factor=0.003),
    }


QUERIES = [
    ("count_bug", "empdept", EMP_DEPT_QUERY),
    ("q1", "tpcd", QUERY_1),
    ("q2", "tpcd", QUERY_2),
    ("q3", "tpcd", QUERY_3),
]


def _fault_log(registry):
    """The fired faults as (site, sequence) pairs -- the deterministic
    fault identity. The human-readable detail can embed generated
    quantifier names, whose gensym counter advances monotonically within a
    process; site and sequence are what the seed pins down."""
    return tuple((site, sequence) for site, sequence, _detail in registry.log())


def _outcome(catalog, sql, strategy, registry):
    """One (query, strategy, seed) run: answer, typed error, or n/a."""
    db = Database(catalog, faults=registry)
    try:
        result = db.execute(sql, strategy=strategy)
        return ("rows", tuple(sorted(result.rows)), _fault_log(registry))
    except NotApplicableError as exc:
        return ("n/a", exc.reason, _fault_log(registry))
    except FaultInjectedError as exc:
        return (
            "error",
            (type(exc).__name__, exc.site, exc.sequence),
            _fault_log(registry),
        )


def _sweep(catalogs):
    outcomes = {}
    for registry in _registries():
        for name, catalog_key, sql in QUERIES:
            for strategy in STRATEGIES:
                outcomes[(registry.seed, name, strategy.value)] = _outcome(
                    catalogs[catalog_key], sql, strategy, registry.replica()
                )
    return outcomes


@pytest.fixture(scope="module")
def reference_answers(catalogs):
    """Fault-free reference rows per (query, strategy).

    The reference is per strategy because Kim's method *by design*
    reproduces the paper's COUNT bug -- its fault-free answer legitimately
    differs from NI's on the section-2 query. The metamorphic relation is
    therefore: injecting faults may fail a strategy, but never change the
    answer it would otherwise give.
    """
    answers = {}
    for name, catalog_key, sql in QUERIES:
        for strategy in STRATEGIES:
            db = Database(catalogs[catalog_key], faults=None)
            # Explicitly disable env faults for the reference run.
            db.faults = None
            db.engine.faults = None
            try:
                rows = db.execute(sql, strategy=strategy).rows
            except NotApplicableError:
                continue
            answers[(name, strategy.value)] = tuple(sorted(rows))
    return answers


#: Strategies that must agree with NI exactly (everything except Kim,
#: whose COUNT bug is the paper's motivating example).
CORRECT_STRATEGIES = tuple(s for s in STRATEGIES if s is not Strategy.KIM)


class TestMetamorphicFaultSweep:
    def test_identical_answer_or_identical_error_class(
        self, catalogs, reference_answers
    ):
        outcomes = _sweep(catalogs)
        assert outcomes, "sweep produced no outcomes"
        for (seed, name, strategy), (kind, payload, _log) in outcomes.items():
            context = f"seed={seed} query={name} strategy={strategy}"
            if kind == "rows":
                # Identical answer: faults never corrupt a result.
                assert payload == reference_answers[(name, strategy)], context
            elif kind == "error":
                # Identical typed error class: never a raw traceback.
                assert payload[0] == "FaultInjectedError", context
            else:
                assert kind == "n/a", context

    def test_correct_strategies_agree_when_they_answer(
        self, catalogs, reference_answers
    ):
        # Among the correctness-preserving strategies, every run that
        # produced rows produced the *same* rows (NI's answer).
        outcomes = _sweep(catalogs)
        correct = {s.value for s in CORRECT_STRATEGIES}
        for (seed, name, strategy), (kind, payload, _log) in outcomes.items():
            if kind != "rows" or strategy not in correct:
                continue
            assert payload == reference_answers[(name, "ni")], (
                f"seed={seed} query={name} strategy={strategy}"
            )

    def test_sweep_replays_identically(self, catalogs):
        # Same seeds => same fault sites, same errors, same outcomes --
        # across two consecutive full sweeps.
        assert _sweep(catalogs) == _sweep(catalogs)

    def test_sweep_actually_injects_faults(self, catalogs):
        kinds = {kind for kind, _, _ in _sweep(catalogs).values()}
        assert "rows" in kinds, "sweep left no run unfaulted"
        if FaultRegistry.from_env() is not None:
            # An env-provided spec (the CI fault matrix) chooses its own
            # seed and rates; it is allowed to fire no faults at all.
            return
        assert "error" in kinds, "sweep fired no faults at all"

    def test_every_strategy_fails_cleanly(self, catalogs):
        # A hard fault on every scan: each strategy must die with the typed
        # error, proving clean failure semantics for all five plans.
        for strategy in STRATEGIES:
            db = Database(
                catalogs["empdept"],
                faults=FaultRegistry.parse("1:storage.scan=1"),
            )
            with pytest.raises(ReproError):
                db.execute(EMP_DEPT_QUERY, strategy=strategy)
