"""Event-stream/counter reconciliation and the events JSON schema.

Two families of property:

* **Reconciliation** -- after a drained soak, per-kind counts over the
  structured event stream must satisfy the same conservation law as the
  :class:`~repro.serve.service.ServiceStats` counters, *exactly* (event
  emission shares the counters' critical section, so there is no window
  in which they disagree). This holds with and without fault injection.
* **Schema round-trip** -- a real event stream survives JSONL
  serialisation byte-identically and validates, mirroring the trace
  JSON guarantees of ``tests/trace/test_trace_json.py``.
"""

import json

import pytest

from repro import Database, Strategy
from repro.obs import (
    EventLog,
    FileSink,
    RingSink,
    TeeSink,
    count_by_kind,
    events_round_trip,
    load_events,
    validate_events,
)
from repro.serve.soak import run_soak

QUERY = (
    "SELECT name FROM dept D WHERE D.budget < 10000 AND D.num_emps > "
    "(SELECT count(*) FROM emp E WHERE E.building = D.building)"
)

#: Same shape as the CLI default: every site lightly faulted.
FAULT_SPEC = "7:rewrite.strategy=0.05,exec.join=0.01,storage.scan=0.002"


@pytest.fixture(autouse=True)
def _no_ambient_env(monkeypatch):
    """Fault behaviour is pinned per-test: an ambient ``REPRO_FAULTS``
    (e.g. the CI fault matrix) must not leak into exact-count asserts."""
    monkeypatch.delenv("REPRO_FAULTS", raising=False)
    monkeypatch.delenv("REPRO_VALIDATE", raising=False)


def _soak_events(faults=None, slow_query_ms=None):
    sink = RingSink(capacity=200_000)
    report = run_soak(
        workers=4, seconds=1.5, seed=11, scale=0.002, faults=faults,
        events=EventLog(sink), slow_query_ms=slow_query_ms,
    )
    return report, sink.events()


def _assert_reconciles(report, events):
    stats = report.stats
    kinds = count_by_kind(events)
    assert validate_events(events) == len(events)
    # Admission edges, one event per counter increment.
    assert kinds.get("query.submitted", 0) == stats.submitted
    assert kinds.get("query.admitted", 0) == stats.admitted
    assert kinds.get("query.rejected", 0) == stats.rejected
    # Conservation: every submission has exactly one admission outcome...
    assert stats.submitted == stats.admitted + stats.rejected
    # ...and after a drain every admission has exactly one finish.
    finished = kinds.get("query.finished", 0)
    assert finished == stats.admitted
    assert finished == stats.completed + stats.failed + stats.cancelled
    assert kinds.get("query.cancelled", 0) == stats.cancelled
    # A query starts only once a worker picks it up: queued cancellations
    # finish without starting.
    started = kinds.get("query.started", 0)
    assert stats.completed + stats.failed <= started <= stats.admitted
    # Per-query outcome tallies match the counters one-for-one.
    outcomes = {}
    for event in events:
        if event["kind"] == "query.finished":
            outcomes[event["outcome"]] = outcomes.get(event["outcome"], 0) + 1
    assert outcomes.get("completed", 0) == stats.completed
    assert outcomes.get("failed", 0) == stats.failed
    assert outcomes.get("cancelled", 0) == stats.cancelled


class TestReconciliation:
    def test_drained_soak_reconciles_exactly(self):
        report, events = _soak_events()
        assert report.ok, report.problems
        _assert_reconciles(report, events)
        assert count_by_kind(events).get("fault.fired", 0) == 0

    def test_reconciles_under_fault_injection(self):
        report, events = _soak_events(faults=FAULT_SPEC)
        _assert_reconciles(report, events)
        kinds = count_by_kind(events)
        # The spec faults every rewrite at 5%: a 1.5s soak fires some.
        assert kinds.get("fault.fired", 0) >= 1
        # Every engine-level event is attributed to a known lifecycle id.
        lifecycle_ids = {
            e["query_id"] for e in events if e["kind"] == "query.submitted"
        }
        for event in events:
            if event["kind"] in ("query.degraded", "fault.fired",
                                 "guard.budget_exceeded"):
                assert event["query_id"] in lifecycle_ids

    def test_slow_query_events_match_slow_total(self):
        report, events = _soak_events(slow_query_ms=0.0)
        kinds = count_by_kind(events)
        assert kinds.get("query.slow", 0) == report.stats.slow_total
        assert report.stats.slow_total >= report.stats.completed


class TestEventsJsonSchema:
    """The events JSONL schema round-trips, mirroring trace JSON."""

    @pytest.fixture
    def stream(self, empdept_catalog, tmp_path):
        """A real event stream: two queries through an observed facade,
        teed to a ring and a JSONL file."""
        path = tmp_path / "events.jsonl"
        ring = RingSink()
        log = EventLog(TeeSink(ring, FileSink(str(path))))
        db = Database(empdept_catalog, events=log)
        db.execute(QUERY, strategy=Strategy.MAGIC)
        db.execute(QUERY, strategy=Strategy.NESTED_ITERATION)
        log.close()
        return ring.events(), str(path)

    def test_real_stream_validates(self, stream):
        events, _ = stream
        assert validate_events(events) == len(events)

    def test_round_trip_is_byte_identical(self, stream):
        events, _ = stream
        assert events_round_trip(events)

    def test_file_and_ring_agree(self, stream):
        events, path = stream
        assert load_events(path) == events

    def test_jsonl_lines_parse_one_to_one(self, stream):
        events, path = stream
        with open(path, "r", encoding="utf-8") as handle:
            lines = [line for line in handle if line.strip()]
        assert [json.loads(line) for line in lines] == events
