"""The paper's incremental-consistency contract, property-tested.

Section 3: "Each rule application should leave the QGM in a consistent
state, because the query rewrite phase may be terminated at any point when
the allocated resources ... are exhausted."

We verify a strictly stronger property on randomly generated correlated
queries: after *every individual step* of magic decorrelation the graph
(a) passes the structural validator and (b) still evaluates to the same
answer as the original query.
"""

from collections import Counter

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exec import execute_graph
from repro.qgm import build_qgm, validate_graph
from repro.rewrite.decorrelate import MagicDecorrelator
from repro.sql.parser import parse_statement
from repro.storage import Catalog, Column, Schema
from repro.types import SQLType

small_value = st.one_of(st.none(), st.integers(0, 2))


def build_catalog(t1_rows, t2_rows) -> Catalog:
    catalog = Catalog()
    catalog.create_table(
        "t1",
        Schema(
            [Column("pk", SQLType.INT, nullable=False),
             Column("a", SQLType.INT), Column("b", SQLType.INT)],
            primary_key=["pk"],
        ),
    )
    catalog.create_table(
        "t2", Schema([Column("x", SQLType.INT), Column("y", SQLType.INT)])
    )
    for i, (a, b) in enumerate(t1_rows):
        catalog.table("t1").insert((i, a, b))
    catalog.table("t2").insert_many(t2_rows)
    return catalog


QUERIES = [
    """SELECT o.pk FROM t1 o
       WHERE o.b > (SELECT count(*) FROM t2 i WHERE i.x = o.a)""",
    """SELECT o.pk FROM t1 o
       WHERE o.b <= (SELECT min(i.y) FROM t2 i WHERE i.x = o.a)""",
    """SELECT o.pk FROM t1 o
       WHERE EXISTS (SELECT 1 FROM t2 i WHERE i.x = o.a)""",
    """SELECT o.pk, dt.s FROM t1 o, DT(s) AS
         (SELECT sum(v) FROM DV(v) AS
           ((SELECT i.y FROM t2 i WHERE i.x = o.a)
            UNION ALL
            (SELECT i2.y FROM t2 i2 WHERE i2.x = o.b)))""",
    """SELECT o.pk FROM t1 o
       WHERE o.b IN (SELECT max(i.y) FROM t2 i WHERE i.x = o.a)""",
]


class TestIncrementalConsistency:
    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(st.tuples(small_value, small_value), max_size=6),
        st.lists(st.tuples(small_value, small_value), max_size=8),
        st.sampled_from(QUERIES),
        st.booleans(),
    )
    def test_every_step_is_consistent_and_answer_preserving(
        self, t1, t2, sql, optimize_keys
    ):
        catalog = build_catalog(t1, t2)
        statement = parse_statement(sql)
        reference_graph = build_qgm(statement, catalog)
        expected = Counter(execute_graph(reference_graph, catalog)[0])

        graph = build_qgm(statement, catalog)
        step_log: list[str] = []

        def on_step(description: str, current) -> None:
            step_log.append(description)
            # (a) structural consistency at every step
            validate_graph(current, catalog)
            # (b) answer preservation at every step
            rows, _ = execute_graph(current, catalog)
            assert Counter(rows) == expected, (description, sql)

        MagicDecorrelator(
            graph, catalog, optimize_keys=optimize_keys, on_step=on_step
        ).run()
        assert step_log, "decorrelation of a correlated query took no steps"
        # Final graph also valid and correct (the last hook already checked,
        # but cleanup runs once more after it).
        validate_graph(graph, catalog)
        rows, _ = execute_graph(graph, catalog)
        assert Counter(rows) == expected
