"""Independent engine oracle: hand-rolled Python evaluation vs the engine.

The decorrelation oracle compares strategies against nested iteration; this
suite validates the engine itself against straight-line Python for joins,
filters, grouping and set operations, so the shared executor is not a
single point of circular trust.
"""

from collections import Counter

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Database
from repro.storage import Catalog, Column, Schema
from repro.types import SQLType

value = st.one_of(st.none(), st.integers(0, 4))
rows_t = st.lists(st.tuples(value, value), max_size=10)
rows_u = st.lists(st.tuples(value, value), max_size=10)


def build(t_rows, u_rows) -> Database:
    catalog = Catalog()
    catalog.create_table(
        "t", Schema([Column("a", SQLType.INT), Column("b", SQLType.INT)])
    )
    catalog.create_table(
        "u", Schema([Column("x", SQLType.INT), Column("y", SQLType.INT)])
    )
    catalog.table("t").insert_many(t_rows)
    catalog.table("u").insert_many(u_rows)
    return Database(catalog)


class TestFilters:
    @settings(max_examples=60, deadline=None)
    @given(rows_t, st.integers(0, 4))
    def test_comparison_filter(self, t_rows, threshold):
        db = build(t_rows, [])
        got = Counter(db.execute(f"SELECT a, b FROM t WHERE a > {threshold}").rows)
        want = Counter(
            (a, b) for a, b in t_rows if a is not None and a > threshold
        )
        assert got == want

    @settings(max_examples=60, deadline=None)
    @given(rows_t)
    def test_null_filter(self, t_rows):
        db = build(t_rows, [])
        got = Counter(db.execute("SELECT a FROM t WHERE b IS NULL").rows)
        want = Counter((a,) for a, b in t_rows if b is None)
        assert got == want


class TestJoins:
    @settings(max_examples=60, deadline=None)
    @given(rows_t, rows_u)
    def test_inner_equijoin(self, t_rows, u_rows):
        db = build(t_rows, u_rows)
        got = Counter(
            db.execute(
                "SELECT t.a, u.y FROM t, u WHERE t.a = u.x"
            ).rows
        )
        want = Counter(
            (a, y)
            for a, _ in t_rows
            for x, y in u_rows
            if a is not None and x is not None and a == x
        )
        assert got == want

    @settings(max_examples=60, deadline=None)
    @given(rows_t, rows_u)
    def test_left_outer_join(self, t_rows, u_rows):
        db = build(t_rows, u_rows)
        got = Counter(
            db.execute(
                "SELECT t.a, u.y FROM t LEFT OUTER JOIN u ON t.a = u.x"
            ).rows
        )
        want: Counter = Counter()
        for a, _ in t_rows:
            matches = [
                (a, y)
                for x, y in u_rows
                if a is not None and x is not None and a == x
            ]
            if matches:
                want.update(matches)
            else:
                want[(a, None)] += 1
        assert got == want


class TestGrouping:
    @settings(max_examples=60, deadline=None)
    @given(rows_t)
    def test_group_count_and_sum(self, t_rows):
        db = build(t_rows, [])
        got = Counter(
            db.execute(
                "SELECT a, count(*), sum(b) FROM t GROUP BY a"
            ).rows
        )
        want: Counter = Counter()
        groups: dict = {}
        for a, b in t_rows:
            groups.setdefault(a, []).append(b)
        for a, values in groups.items():
            non_null = [v for v in values if v is not None]
            want[(a, len(values), sum(non_null) if non_null else None)] += 1
        assert got == want

    @settings(max_examples=40, deadline=None)
    @given(rows_t)
    def test_distinct(self, t_rows):
        db = build(t_rows, [])
        got = sorted(
            db.execute("SELECT DISTINCT a FROM t").rows,
            key=repr,
        )
        want = sorted({(a,) for a, _ in t_rows}, key=repr)
        assert got == want


class TestSetOps:
    @settings(max_examples=40, deadline=None)
    @given(rows_t, rows_u)
    def test_union_all(self, t_rows, u_rows):
        db = build(t_rows, u_rows)
        got = Counter(
            db.execute("SELECT a FROM t UNION ALL SELECT x FROM u").rows
        )
        want = Counter([(a,) for a, _ in t_rows] + [(x,) for x, _ in u_rows])
        assert got == want

    @settings(max_examples=40, deadline=None)
    @given(rows_t, rows_u)
    def test_intersect(self, t_rows, u_rows):
        db = build(t_rows, u_rows)
        got = set(db.execute("SELECT a FROM t INTERSECT SELECT x FROM u").rows)
        want = {(a,) for a, _ in t_rows} & {(x,) for x, _ in u_rows}
        assert got == want

    @settings(max_examples=40, deadline=None)
    @given(rows_t, rows_u)
    def test_except(self, t_rows, u_rows):
        db = build(t_rows, u_rows)
        got = set(db.execute("SELECT a FROM t EXCEPT SELECT x FROM u").rows)
        want = {(a,) for a, _ in t_rows} - {(x,) for x, _ in u_rows}
        assert got == want


class TestOrderLimit:
    @settings(max_examples=40, deadline=None)
    @given(rows_t, st.integers(0, 5))
    def test_order_by_limit(self, t_rows, limit):
        from repro.types import sort_key

        db = build(t_rows, [])
        got = db.execute(f"SELECT a FROM t ORDER BY a LIMIT {limit}").rows
        want = sorted(
            [(a,) for a, _ in t_rows], key=lambda r: sort_key(r[0])
        )[:limit]
        assert got == want
