"""Property-based tests for three-valued logic and NULL-aware operators."""

from hypothesis import given
from hypothesis import strategies as st

from repro.types import (
    COMPARISONS,
    sql_eq,
    sql_is_not_distinct,
    sql_like,
    sql_lt,
    tv_and,
    tv_not,
    tv_or,
)

truth = st.sampled_from([True, False, None])
values = st.one_of(st.none(), st.integers(-5, 5))
strings = st.one_of(st.none(), st.text(alphabet="ab%_", max_size=5))


class TestTruthAlgebra:
    @given(truth, truth)
    def test_de_morgan_and(self, a, b):
        assert tv_not(tv_and(a, b)) == tv_or(tv_not(a), tv_not(b))

    @given(truth, truth)
    def test_de_morgan_or(self, a, b):
        assert tv_not(tv_or(a, b)) == tv_and(tv_not(a), tv_not(b))

    @given(truth)
    def test_double_negation(self, a):
        assert tv_not(tv_not(a)) == a

    @given(truth, truth, truth)
    def test_and_associative(self, a, b, c):
        assert tv_and(tv_and(a, b), c) == tv_and(a, tv_and(b, c))

    @given(truth, truth, truth)
    def test_or_distributes_over_and(self, a, b, c):
        assert tv_or(a, tv_and(b, c)) == tv_and(tv_or(a, b), tv_or(a, c))

    @given(truth)
    def test_identity_elements(self, a):
        assert tv_and(a, True) == a
        assert tv_or(a, False) == a

    @given(truth)
    def test_dominant_elements(self, a):
        assert tv_and(a, False) is False
        assert tv_or(a, True) is True


class TestComparisonProperties:
    @given(values, values)
    def test_null_operand_gives_unknown(self, a, b):
        for op, fn in COMPARISONS.items():
            if op == "<=>":
                continue
            if a is None or b is None:
                assert fn(a, b) is None

    @given(values, values)
    def test_eq_symmetric(self, a, b):
        assert sql_eq(a, b) == sql_eq(b, a)

    @given(values, values)
    def test_lt_gt_mirror(self, a, b):
        assert sql_lt(a, b) == COMPARISONS[">"](b, a)

    @given(values, values)
    def test_trichotomy_on_non_null(self, a, b):
        if a is None or b is None:
            return
        outcomes = [COMPARISONS[op](a, b) for op in ("<", "=", ">")]
        assert outcomes.count(True) == 1

    @given(values, values)
    def test_null_safe_eq_never_unknown(self, a, b):
        result = sql_is_not_distinct(a, b)
        assert result in (True, False)
        if a is not None and b is not None:
            assert result == sql_eq(a, b)

    @given(values)
    def test_null_safe_eq_reflexive(self, a):
        assert sql_is_not_distinct(a, a) is True


class TestLikeProperties:
    @given(strings)
    def test_percent_matches_everything(self, s):
        if s is None:
            assert sql_like(s, "%") is None
        else:
            assert sql_like(s, "%") is True

    @given(st.text(alphabet="ab", max_size=5))
    def test_self_match_without_wildcards(self, s):
        assert sql_like(s, s) is True

    @given(st.text(alphabet="ab", max_size=5))
    def test_underscore_length(self, s):
        pattern = "_" * len(s)
        assert sql_like(s, pattern) is True
        assert sql_like(s + "a", pattern) is False
