"""Unit tests for QGM analysis utilities and the consistency validator."""

import pytest

from repro.errors import QGMConsistencyError
from repro.qgm import build_qgm, validate_graph
from repro.qgm.analysis import (
    box_children,
    external_column_refs,
    iter_boxes,
    parent_edges,
    quantifier_owner_map,
    rewrite_subtree_refs,
)
from repro.qgm.expr import ColumnRef
from repro.qgm.model import (
    BaseTableBox,
    GroupByBox,
    OutputColumn,
    SelectBox,
)
from repro.sql import ast
from repro.sql.parser import parse_statement


def build(sql, catalog):
    return build_qgm(parse_statement(sql), catalog)


class TestTraversal:
    def test_iter_boxes_visits_subquery_bodies(self, empdept_catalog):
        g = build(
            "SELECT name FROM dept WHERE num_emps > "
            "(SELECT count(*) FROM emp)",
            empdept_catalog,
        )
        kinds = [b.kind for b in iter_boxes(g.root)]
        assert "groupby" in kinds
        assert kinds.count("base_table") == 2

    def test_iter_boxes_dag_safe(self, empdept_catalog):
        g = build("SELECT name FROM dept", empdept_catalog)
        shared = g.root.quantifiers[0].box
        # Create a second reference to the same base box (a CSE).
        g.root.add_quantifier(shared, "again")
        boxes = list(iter_boxes(g.root))
        assert len(boxes) == len({b.id for b in boxes})

    def test_parent_edges(self, empdept_catalog):
        g = build(
            "SELECT name FROM dept WHERE num_emps > "
            "(SELECT count(*) FROM emp WHERE building = 'B1')",
            empdept_catalog,
        )
        parents = parent_edges(g.root)
        assert parents[g.root.id] == []
        for box in iter_boxes(g.root):
            if box is not g.root:
                assert len(parents[box.id]) == 1  # fresh queries are trees

    def test_box_children_includes_expression_boxes(self, empdept_catalog):
        g = build(
            "SELECT name FROM dept WHERE EXISTS (SELECT 1 FROM emp)",
            empdept_catalog,
        )
        children = box_children(g.root)
        assert len(children) == 2  # dept base + exists body

    def test_quantifier_owner_map(self, empdept_catalog):
        g = build("SELECT d.name FROM dept d, emp e", empdept_catalog)
        owners = quantifier_owner_map(g.root)
        for q in g.root.quantifiers:
            assert owners[id(q)] is g.root


class TestExternalRefs:
    def test_uncorrelated_subtree_has_none(self, empdept_catalog):
        g = build("SELECT name FROM dept WHERE budget < 1", empdept_catalog)
        assert external_column_refs(g.root) == []

    def test_correlated_subtree_reports_destination(self, empdept_catalog):
        g = build(
            "SELECT d.name FROM dept d WHERE EXISTS "
            "(SELECT 1 FROM emp e WHERE e.building = d.building)",
            empdept_catalog,
        )
        exists_box = box_children(g.root)[1]
        refs = external_column_refs(exists_box)
        assert len(refs) == 1
        destination, ref = refs[0]
        assert destination is exists_box
        assert ref.column == "building"

    def test_rewrite_subtree_refs(self, empdept_catalog):
        g = build(
            "SELECT d.name FROM dept d WHERE EXISTS "
            "(SELECT 1 FROM emp e WHERE e.building = d.building)",
            empdept_catalog,
        )
        exists_box = box_children(g.root)[1]
        replacement = ast.Literal("B1")

        def substitute(ref: ColumnRef):
            if ref.quantifier is g.root.quantifiers[0]:
                return replacement
            return None

        rewrite_subtree_refs(exists_box, substitute)
        assert external_column_refs(exists_box) == []


class TestValidator:
    def test_valid_graph_passes(self, empdept_catalog):
        g = build(
            "SELECT building, count(*) FROM emp GROUP BY building "
            "HAVING count(*) > 1",
            empdept_catalog,
        )
        validate_graph(g, empdept_catalog)

    def test_detects_unknown_output_column(self, empdept_catalog):
        g = build("SELECT name FROM dept", empdept_catalog)
        q = g.root.quantifiers[0]
        g.root.outputs.append(OutputColumn("bad", q.ref("nope")))
        with pytest.raises(QGMConsistencyError):
            validate_graph(g, empdept_catalog)

    def test_detects_invisible_quantifier(self, empdept_catalog):
        g1 = build("SELECT name FROM dept", empdept_catalog)
        g2 = build("SELECT name FROM emp", empdept_catalog)
        foreign = g2.root.quantifiers[0]
        g1.root.outputs.append(OutputColumn("bad", foreign.ref("name")))
        with pytest.raises(QGMConsistencyError):
            validate_graph(g1, empdept_catalog)

    def test_detects_duplicate_output_names(self, empdept_catalog):
        g = build("SELECT name FROM dept", empdept_catalog)
        g.root.outputs.append(
            OutputColumn("name", g.root.quantifiers[0].ref("budget"))
        )
        with pytest.raises(QGMConsistencyError):
            validate_graph(g, empdept_catalog)

    def test_detects_aggregate_in_spj_predicate(self, empdept_catalog):
        g = build("SELECT name FROM dept", empdept_catalog)
        g.root.predicates.append(
            ast.Comparison(
                ">", ast.AggregateCall("count", None), ast.Literal(1)
            )
        )
        with pytest.raises(QGMConsistencyError):
            validate_graph(g, empdept_catalog)

    def test_detects_non_grouped_output(self, empdept_catalog):
        g = build("SELECT count(*) FROM emp", empdept_catalog)
        group_box = g.root
        assert isinstance(group_box, GroupByBox)
        gq = group_box.quantifier
        group_box.outputs.append(OutputColumn("leak", gq.ref("one_1")))
        with pytest.raises(QGMConsistencyError):
            validate_graph(g, empdept_catalog)

    def test_detects_unknown_base_table(self, empdept_catalog):
        box = BaseTableBox("ghost", ["a"])
        outer = SelectBox()
        q = outer.add_quantifier(box, "g")
        outer.outputs = [OutputColumn("a", q.ref("a"))]
        from repro.qgm.model import QueryGraph

        with pytest.raises(QGMConsistencyError):
            validate_graph(QueryGraph(root=outer), empdept_catalog)

    def test_detects_schema_drift(self, empdept_catalog):
        box = BaseTableBox("dept", ["wrong", "columns"])
        outer = SelectBox()
        q = outer.add_quantifier(box, "d")
        outer.outputs = [OutputColumn("wrong", q.ref("wrong"))]
        from repro.qgm.model import QueryGraph

        with pytest.raises(QGMConsistencyError):
            validate_graph(QueryGraph(root=outer), empdept_catalog)

    def test_detects_setop_arity_drift(self, empdept_catalog):
        g = build(
            "SELECT building FROM dept UNION ALL SELECT building FROM emp",
            empdept_catalog,
        )
        arm = g.root.quantifiers[0].box
        arm.outputs.append(
            OutputColumn("extra", ast.Literal(1))
        )
        with pytest.raises(QGMConsistencyError):
            validate_graph(g, empdept_catalog)

    def test_detects_quantifier_owned_twice(self, empdept_catalog):
        g = build("SELECT d.name FROM dept d", empdept_catalog)
        inner = SelectBox(outputs=[OutputColumn("x", ast.Literal(1))])
        stolen = g.root.quantifiers[0]
        inner.quantifiers.append(stolen)
        g.root.add_quantifier(inner, "i")
        with pytest.raises(QGMConsistencyError):
            validate_graph(g, empdept_catalog)
