"""Tests for QGM -> SQL view generation (the paper's section 2.1 form).

The strongest check is the round trip: the generated CREATE VIEW script is
fed back through the engine's own parser/executor and must produce exactly
the original query's answer.
"""

from collections import Counter

import pytest

from repro import Database, Strategy
from repro.qgm.sqlgen import graph_to_sql
from repro.sql.parser import parse_statement

PAPER_QUERY = """
    SELECT d.name FROM dept d
    WHERE d.budget < 10000 AND d.num_emps >
      (SELECT count(*) FROM emp e WHERE e.building = d.building)
"""


@pytest.fixture
def db(empdept_catalog) -> Database:
    return Database(empdept_catalog)


def roundtrip(db: Database, sql: str, strategy: Strategy) -> None:
    """Execute the generated view script on a fresh Database sharing the
    same base tables and compare answers."""
    script = db.rewritten_sql(sql, strategy)
    expected = Counter(db.execute(sql).rows)
    replay = Database(db.catalog)
    results = replay.execute_script(script)
    final = results[-1]
    assert Counter(final.rows) == expected
    # Clean up the created views so other round trips can reuse the catalog.
    for statement in script.split(";"):
        statement = statement.strip()
        if statement.upper().startswith("CREATE VIEW"):
            view_name = statement.split()[2]
            db.catalog.drop_view(view_name)


class TestSectionTwoPresentation:
    def test_contains_papers_view_roles(self, db):
        script = db.rewritten_sql(PAPER_QUERY, Strategy.MAGIC)
        assert "CREATE VIEW magic_" in script       # the Magic table
        assert "CREATE VIEW bug_removal_" in script  # the BugRemoval box
        assert "SELECT DISTINCT" in script
        assert "coalesce(" in script
        assert "LEFT OUTER JOIN" in script
        assert script.rstrip().endswith(";")

    def test_supplementary_view_referenced_twice(self, db):
        script = db.rewritten_sql(PAPER_QUERY, Strategy.MAGIC)
        # The supplementary view name appears in the magic view and in the
        # final SELECT: the common subexpression of section 5.1.
        supp_name = next(
            line.split()[2]
            for line in script.splitlines()
            if line.startswith("CREATE VIEW v_")
        )
        uses = script.count(f"{supp_name} AS")
        assert uses >= 3  # definition + two references


class TestRoundTrips:
    def test_magic_script_reproduces_answer(self, db):
        roundtrip(db, PAPER_QUERY, Strategy.MAGIC)

    def test_kim_script_reproduces_kim_answer(self, db):
        script = db.rewritten_sql(PAPER_QUERY, Strategy.KIM)
        kim_rows = Counter(db.execute(PAPER_QUERY, strategy=Strategy.KIM).rows)
        results = Database(db.catalog).execute_script(script)
        assert Counter(results[-1].rows) == kim_rows

    def test_dayal_script_reproduces_answer(self, db):
        roundtrip(db, PAPER_QUERY, Strategy.DAYAL)

    def test_min_query_plain_join_script(self, db):
        sql = """
            SELECT d.name FROM dept d
            WHERE d.budget > (SELECT min(e.salary) * 10 FROM emp e
                              WHERE e.building = d.building)
        """
        script = db.rewritten_sql(sql, Strategy.MAGIC)
        assert "LEFT OUTER JOIN" not in script  # plain-join optimisation
        roundtrip(db, sql, Strategy.MAGIC)

    def test_ni_graph_renders_correlated_marker(self, db):
        # Rendering an un-rewritten correlated query still works; the
        # correlation shows as a reference to the outer view's alias.
        from repro.qgm import build_qgm

        graph = build_qgm(parse_statement(PAPER_QUERY), db.catalog)
        script = graph_to_sql(graph)
        assert "d.building" in script
