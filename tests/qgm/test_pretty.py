"""Tests for the QGM pretty-printer."""


from repro.qgm import build_qgm, graph_to_text
from repro.qgm.pretty import box_to_text, expr_to_text
from repro.sql.parser import parse_statement


def build(sql, catalog):
    return build_qgm(parse_statement(sql), catalog)


class TestExprRendering:
    def test_correlation_marker(self, empdept_catalog):
        g = build(
            "SELECT d.name FROM dept d WHERE EXISTS "
            "(SELECT 1 FROM emp e WHERE e.building = d.building)",
            empdept_catalog,
        )
        from repro.qgm.analysis import box_children

        exists_box = box_children(g.root)[1]
        predicate = exists_box.predicates[0]
        own = {id(q) for q in exists_box.quantifiers}
        text = expr_to_text(predicate, own)
        assert "^d.building" in text
        assert "e.building" in text and "^e.building" not in text

    def test_operators_rendered(self, empdept_catalog):
        g = build(
            "SELECT name FROM dept WHERE budget BETWEEN 1 AND 2 "
            "OR name LIKE 'd%' OR budget IN (5, 6) OR budget IS NULL "
            "OR NOT (budget = 3)",
            empdept_catalog,
        )
        rendered = expr_to_text(
            g.root.predicates[0], {id(q) for q in g.root.quantifiers}
        )
        for fragment in ("BETWEEN", "LIKE", "IN", "IS NULL", "NOT"):
            assert fragment in rendered

    def test_aggregate_rendering(self, empdept_catalog):
        g = build(
            "SELECT count(DISTINCT building), count(*) FROM dept",
            empdept_catalog,
        )
        text = graph_to_text(g)
        assert "count(distinct" in text
        assert "count(*)" in text


class TestBoxRendering:
    def test_base_table_shows_columns(self, empdept_catalog):
        g = build("SELECT name FROM dept", empdept_catalog)
        text = graph_to_text(g)
        assert "BASE_TABLE dept(name, budget, num_emps, building)" in text

    def test_distinct_flag_shown(self, empdept_catalog):
        g = build("SELECT DISTINCT name FROM dept", empdept_catalog)
        assert "SELECT DISTINCT" in box_to_text(g.root)[0] + " DISTINCT" or \
            "DISTINCT" in graph_to_text(g)

    def test_outer_join_shows_preserved_side(self, empdept_catalog):
        g = build(
            "SELECT d.name FROM dept d LEFT OUTER JOIN emp e "
            "ON d.building = e.building",
            empdept_catalog,
        )
        text = graph_to_text(g)
        assert "preserved:" in text
        assert "OUTERJOIN" in text

    def test_setop_kind_shown(self, empdept_catalog):
        g = build(
            "SELECT building FROM dept UNION ALL SELECT building FROM emp",
            empdept_catalog,
        )
        assert "UNION ALL" in graph_to_text(g)

    def test_order_and_limit_footer(self, empdept_catalog):
        g = build(
            "SELECT name FROM dept ORDER BY name DESC LIMIT 3",
            empdept_catalog,
        )
        text = graph_to_text(g)
        assert "order by" in text and "limit 3" in text

    def test_groupby_clause_shown(self, empdept_catalog):
        g = build(
            "SELECT building, count(*) FROM emp GROUP BY building",
            empdept_catalog,
        )
        assert "group by" in graph_to_text(g)
