"""Unit tests for AST -> QGM building: shapes, scoping, correlations."""

import pytest

from repro.errors import BindError
from repro.qgm import (
    BaseTableBox,
    BoxScalarSubquery,
    GroupByBox,
    OuterJoinBox,
    SelectBox,
    SetOpBox,
    build_qgm,
    graph_to_text,
    iter_boxes,
    validate_graph,
)
from repro.qgm.analysis import analyze_correlations, external_column_refs, is_correlated
from repro.sql.parser import parse_statement


def build(sql: str, catalog):
    graph = build_qgm(parse_statement(sql), catalog)
    validate_graph(graph, catalog)
    return graph


class TestBasicShapes:
    def test_simple_select(self, empdept_catalog):
        g = build("SELECT name, budget FROM dept", empdept_catalog)
        root = g.root
        assert isinstance(root, SelectBox)
        assert root.output_names() == ["name", "budget"]
        assert isinstance(root.quantifiers[0].box, BaseTableBox)

    def test_select_star(self, empdept_catalog):
        g = build("SELECT * FROM dept", empdept_catalog)
        assert g.root.output_names() == ["name", "budget", "num_emps", "building"]

    def test_qualified_star(self, empdept_catalog):
        g = build("SELECT d.* FROM dept d, emp e", empdept_catalog)
        assert g.root.output_names() == ["name", "budget", "num_emps", "building"]

    def test_where_predicates_flattened(self, empdept_catalog):
        g = build(
            "SELECT name FROM dept WHERE budget < 10000 AND building = 'B1'",
            empdept_catalog,
        )
        assert len(g.root.predicates) == 2

    def test_implicit_join(self, empdept_catalog):
        g = build(
            "SELECT d.name, e.name FROM dept d, emp e "
            "WHERE d.building = e.building",
            empdept_catalog,
        )
        assert len(g.root.quantifiers) == 2
        # duplicate output names are uniquified
        assert g.root.output_names() == ["name", "name_1"]

    def test_inner_join_flattened_into_spj(self, empdept_catalog):
        g = build(
            "SELECT d.name FROM dept d JOIN emp e ON d.building = e.building",
            empdept_catalog,
        )
        assert isinstance(g.root, SelectBox)
        assert len(g.root.quantifiers) == 2
        assert len(g.root.predicates) == 1

    def test_aggregation_pipeline(self, empdept_catalog):
        g = build(
            "SELECT building, count(*) AS cnt FROM emp "
            "GROUP BY building HAVING count(*) > 1",
            empdept_catalog,
        )
        top = g.root
        assert isinstance(top, SelectBox)
        assert len(top.predicates) == 1  # HAVING
        group_box = top.quantifiers[0].box
        assert isinstance(group_box, GroupByBox)
        assert len(group_box.group_by) == 1
        spj = group_box.quantifier.box
        assert isinstance(spj, SelectBox)

    def test_scalar_aggregate_no_groupby(self, empdept_catalog):
        g = build("SELECT count(*) FROM emp", empdept_catalog)
        # Figure-1 shape: the block IS the aggregate box (no wrapper SPJ).
        group_box = g.root
        assert isinstance(group_box, GroupByBox)
        assert group_box.is_scalar

    def test_distinct_flag(self, empdept_catalog):
        g = build("SELECT DISTINCT building FROM dept", empdept_catalog)
        assert g.root.distinct

    def test_union(self, empdept_catalog):
        g = build(
            "SELECT building FROM dept UNION ALL SELECT building FROM emp",
            empdept_catalog,
        )
        assert isinstance(g.root, SetOpBox)
        assert g.root.all and g.root.op == "union"
        assert g.root.output_names() == ["building"]

    def test_union_arity_mismatch(self, empdept_catalog):
        with pytest.raises(BindError):
            build(
                "SELECT building FROM dept UNION SELECT building, name FROM emp",
                empdept_catalog,
            )

    def test_outer_join_box(self, empdept_catalog):
        g = build(
            "SELECT d.name, e.name FROM dept d LEFT OUTER JOIN emp e "
            "ON d.building = e.building",
            empdept_catalog,
        )
        oj = g.root.quantifiers[0].box
        assert isinstance(oj, OuterJoinBox)
        assert oj.condition is not None

    def test_derived_table(self, empdept_catalog):
        g = build(
            "SELECT bldg FROM (SELECT building FROM dept) AS t(bldg)",
            empdept_catalog,
        )
        inner = g.root.quantifiers[0].box
        assert isinstance(inner, SelectBox)
        assert inner.output_names() == ["bldg"]

    def test_order_by_and_limit(self, empdept_catalog):
        g = build(
            "SELECT name, budget FROM dept ORDER BY budget DESC, name LIMIT 3",
            empdept_catalog,
        )
        assert g.order_by == [(1, True), (0, False)]
        assert g.limit == 3

    def test_order_by_position(self, empdept_catalog):
        g = build("SELECT name, budget FROM dept ORDER BY 2", empdept_catalog)
        assert g.order_by == [(1, False)]

    def test_no_from(self, empdept_catalog):
        g = build("SELECT 1 AS x, 'a' AS y", empdept_catalog)
        assert g.root.output_names() == ["x", "y"]
        assert g.root.quantifiers == []

    def test_view_expansion(self, empdept_catalog):
        empdept_catalog.create_view(
            "lowdept", "SELECT name, building FROM dept WHERE budget < 10000"
        )
        g = build("SELECT name FROM lowdept", empdept_catalog)
        inner = g.root.quantifiers[0].box
        assert isinstance(inner, SelectBox)
        assert inner.output_names() == ["name", "building"]


class TestScoping:
    def test_unknown_column(self, empdept_catalog):
        with pytest.raises(BindError):
            build("SELECT nosuch FROM dept", empdept_catalog)

    def test_unknown_alias(self, empdept_catalog):
        with pytest.raises(BindError):
            build("SELECT x.name FROM dept d", empdept_catalog)

    def test_ambiguous_column(self, empdept_catalog):
        with pytest.raises(BindError):
            build("SELECT building FROM dept, emp", empdept_catalog)

    def test_duplicate_alias(self, empdept_catalog):
        with pytest.raises(BindError):
            build("SELECT 1 FROM dept d, emp d", empdept_catalog)

    def test_non_grouped_column_rejected(self, empdept_catalog):
        with pytest.raises(BindError):
            build(
                "SELECT name, count(*) FROM emp GROUP BY building",
                empdept_catalog,
            )

    def test_having_without_groupby_rejected(self, empdept_catalog):
        with pytest.raises(BindError):
            build("SELECT name FROM dept HAVING budget > 1", empdept_catalog)


class TestCorrelations:
    PAPER_QUERY = """
        Select D.name From Dept D
        Where D.budget < 10000 and D.num_emps >
          (Select Count(*) From Emp E Where D.building = E.building)
    """

    def test_correlation_detected(self, empdept_catalog):
        g = build(self.PAPER_QUERY, empdept_catalog)
        # The subquery box is inside the comparison predicate.
        subqueries = [
            node
            for predicate in g.root.predicates
            for node in predicate.walk()
            if isinstance(node, BoxScalarSubquery)
        ]
        assert len(subqueries) == 1
        agg_box = subqueries[0].box
        assert isinstance(agg_box, GroupByBox)
        assert is_correlated(agg_box)
        refs = external_column_refs(agg_box)
        assert len(refs) == 1
        dest_box, ref = refs[0]
        assert ref.column == "building"
        assert isinstance(dest_box, SelectBox)

    def test_correlation_info(self, empdept_catalog):
        g = build(self.PAPER_QUERY, empdept_catalog)
        info = analyze_correlations(g.root)
        root_info = info[g.root.id]
        assert root_info.ancestors == []
        # The aggregate box and the SPJ below it are correlated to the root.
        correlated = [
            record for record in info.values() if root_info.box in record.correlated_to
        ]
        assert len(correlated) >= 2
        for record in correlated:
            caused = record.caused_by[g.root.id]
            assert all(isinstance(b, SelectBox) for b in caused)

    def test_uncorrelated_subquery(self, empdept_catalog):
        g = build(
            "SELECT name FROM dept WHERE num_emps > "
            "(SELECT count(*) FROM emp WHERE building = 'B1')",
            empdept_catalog,
        )
        subquery = next(
            node
            for predicate in g.root.predicates
            for node in predicate.walk()
            if isinstance(node, BoxScalarSubquery)
        )
        assert not is_correlated(subquery.box)

    def test_multi_level_correlation(self, empdept_catalog):
        # Correlation spanning two levels of nesting.
        g = build(
            """
            SELECT d.name FROM dept d WHERE EXISTS (
              SELECT 1 FROM emp e WHERE e.building = d.building AND e.salary >
                (SELECT avg(e2.salary) FROM emp e2 WHERE e2.building = d.building)
            )
            """,
            empdept_catalog,
        )
        info = analyze_correlations(g.root)
        root_correlated = [
            record for record in info.values()
            if any(a is g.root for a in record.correlated_to)
        ]
        assert len(root_correlated) >= 3  # exists-SPJ, inner agg chain

    def test_correlated_derived_table_q3_style(self, empdept_catalog):
        g = build(
            """
            SELECT d.name, dt.cnt FROM dept d, DT(cnt) AS
              (SELECT count(*) FROM emp e WHERE e.building = d.building)
            """,
            empdept_catalog,
        )
        derived = g.root.quantifiers[1].box
        assert is_correlated(derived)


class TestPretty:
    def test_renders_correlation_marker(self, empdept_catalog):
        g = build(TestCorrelations.PAPER_QUERY, empdept_catalog)
        text = graph_to_text(g)
        assert "^" in text  # correlated ref marked
        assert "GROUPBY" in text
        assert "base_table".upper() in text

    def test_every_box_rendered(self, empdept_catalog):
        g = build(TestCorrelations.PAPER_QUERY, empdept_catalog)
        text = graph_to_text(g)
        for box in iter_boxes(g.root):
            assert f"[{box.id}]" in text
