"""Unit tests for the TPC-D substrate: schema, generator, queries."""

import pytest

from repro import Database, Strategy
from repro.storage import Catalog
from repro.tpcd import (
    EMP_DEPT_QUERY,
    QUERY_1,
    QUERY_1_VARIANT,
    QUERY_2,
    QUERY_3,
    create_tpcd_schema,
    load_empdept,
    load_tpcd,
    paper_row_counts,
)
from repro.tpcd.schema import NATIONS, REGIONS
from repro.sql.parser import parse_statement


class TestSchema:
    def test_paper_counts_at_paper_scale(self):
        assert paper_row_counts(0.1) == {
            "customers": 15_000,
            "parts": 20_000,
            "suppliers": 1_000,
            "partsupp": 80_000,
            "lineitem": 600_000,
        }

    def test_twenty_five_nations_five_regions(self):
        assert len(NATIONS) == 25
        assert len(REGIONS) == 5
        assert len(REGIONS["EUROPE"]) == 5
        assert ("FRANCE", "EUROPE") in NATIONS

    def test_schema_creates_all_tables(self):
        catalog = Catalog()
        create_tpcd_schema(catalog)
        for name in ("customers", "parts", "suppliers", "partsupp", "lineitem"):
            assert catalog.has_table(name)

    def test_paper_index_set(self):
        catalog = Catalog()
        create_tpcd_schema(catalog)
        partsupp = catalog.table("partsupp")
        # ps_suppkey indexed (Figure 7 drops it); no single-column ps_partkey
        # index (the 1993 key is the composite primary key).
        assert "ps_suppkey_idx" in partsupp.indexes
        assert partsupp.find_index(["ps_partkey"]) is None
        assert catalog.table("lineitem").find_index(["l_partkey"]) is not None


class TestGenerator:
    @pytest.fixture(scope="class")
    def catalog(self):
        return load_tpcd(scale_factor=0.005)

    def test_counts(self, catalog):
        expected = paper_row_counts(0.005)
        for name, count in expected.items():
            assert len(catalog.table(name)) == count

    def test_partsupp_four_distinct_suppliers_per_part(self, catalog):
        seen: dict[int, set[int]] = {}
        for part, supp, _, _ in catalog.table("partsupp").rows:
            seen.setdefault(part, set()).add(supp)
        assert all(len(s) == 4 for s in seen.values())

    def test_suppliers_have_consistent_nation_region(self, catalog):
        nation_to_region = dict(NATIONS)
        for row in catalog.table("suppliers").rows:
            assert nation_to_region[row[3]] == row[4]

    def test_foreign_keys_valid(self, catalog):
        n_parts = len(catalog.table("parts"))
        n_suppliers = len(catalog.table("suppliers"))
        for row in catalog.table("lineitem").rows:
            assert 1 <= row[2] <= n_parts
            assert 1 <= row[3] <= n_suppliers

    def test_quantity_range_matches_query2(self, catalog):
        # Query 2 relies on quantities in [1, 50].
        quantities = [r[4] for r in catalog.table("lineitem").rows]
        assert min(quantities) >= 1 and max(quantities) <= 50


class TestPaperQueriesParse:
    @pytest.mark.parametrize(
        "sql", [EMP_DEPT_QUERY, QUERY_1, QUERY_1_VARIANT, QUERY_2, QUERY_3],
        ids=["empdept", "q1", "q1b", "q2", "q3"],
    )
    def test_parses(self, sql):
        parse_statement(sql)


class TestPaperQueriesRun:
    """Tiny-scale end-to-end runs of all paper queries under all strategies."""

    @pytest.fixture(scope="class")
    def db(self):
        return Database(load_tpcd(scale_factor=0.003))

    @pytest.mark.parametrize(
        "sql", [QUERY_1, QUERY_1_VARIANT, QUERY_2],
        ids=["q1", "q1b", "q2"],
    )
    def test_all_strategies_agree(self, db, sql):
        from collections import Counter

        oracle = Counter(db.execute(sql).rows)
        for strategy in (Strategy.KIM, Strategy.DAYAL, Strategy.MAGIC,
                         Strategy.MAGIC_OPT):
            assert Counter(db.execute(sql, strategy=strategy).rows) == oracle, (
                strategy
            )

    def test_query3_magic_agrees(self, db):
        from collections import Counter

        oracle = Counter(db.execute(QUERY_3).rows)
        assert Counter(db.execute(QUERY_3, strategy=Strategy.MAGIC).rows) == oracle
        assert (
            Counter(db.execute(QUERY_3, strategy=Strategy.MAGIC_OPT).rows)
            == oracle
        )

    def test_query2_invocations_keyed(self, db):
        result = db.execute(QUERY_2)
        # One invocation per qualifying part (binding is the part key).
        parts = db.execute(
            "SELECT count(*) FROM parts WHERE p_brand = 'Brand#23' "
            "AND p_container = '6 PACK'"
        ).scalar()
        assert result.metrics.subquery_invocations == parts

    def test_query3_invocations_match_european_suppliers(self, db):
        result = db.execute(QUERY_3)
        europeans = db.execute(
            "SELECT count(*) FROM suppliers WHERE s_region = 'EUROPE'"
        ).scalar()
        assert result.metrics.subquery_invocations == europeans
        assert len(result.rows) == europeans  # LOJ keeps every supplier


class TestEmpDept:
    def test_load_empdept(self):
        catalog = load_empdept(n_depts=20, n_emps=100, n_buildings=5)
        assert len(catalog.table("dept")) == 20
        assert len(catalog.table("emp")) == 100

    def test_empty_buildings_exist(self):
        catalog = load_empdept(
            n_depts=50, n_emps=200, n_buildings=10,
            empty_building_fraction=0.3,
        )
        dept_buildings = {r[3] for r in catalog.table("dept").rows}
        emp_buildings = {r[2] for r in catalog.table("emp").rows}
        assert dept_buildings - emp_buildings  # some dept building is empty

    def test_example_query_runs_and_matches_magic(self):
        from collections import Counter

        db = Database(load_empdept(n_depts=40, n_emps=300, n_buildings=8))
        oracle = Counter(db.execute(EMP_DEPT_QUERY).rows)
        for strategy in (Strategy.DAYAL, Strategy.MAGIC, Strategy.MAGIC_OPT,
                         Strategy.GANSKI_WONG):
            assert Counter(db.execute(EMP_DEPT_QUERY, strategy=strategy).rows) == oracle
