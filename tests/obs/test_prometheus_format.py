"""Strict Prometheus text-exposition validation of the stats export.

``ServiceStats.export("prometheus")`` is scraped by real collectors, so
spot-checking a few substrings (as the service suite does) is not enough:
one malformed label, a HELP without a TYPE, or a non-monotone histogram
bucket silently corrupts every downstream dashboard. This module parses
the *entire* exposition with a strict line-format parser and enforces:

* every line is a well-formed HELP/TYPE comment or a sample;
* each metric family declares HELP then TYPE exactly once, before its
  samples, and families are not interleaved;
* counters end in ``_total``; histogram samples are exactly the
  ``_bucket``/``_sum``/``_count`` triple of their family;
* label names are legal, label values use only valid escapes
  (``\\\\``, ``\\"``, ``\\n``), and no two samples share a name+labelset;
* per histogram series (labelset minus ``le``): bucket bounds strictly
  increase, cumulative counts are monotone non-decreasing, and the
  ``+Inf`` bucket equals ``_count``.

The parser itself is exercised against malformed lines so a bug in it
cannot make the format test vacuous.
"""

import math
import re

import pytest

from repro.serve import QueryService
from repro.tpcd import EMP_DEPT_QUERY

METRIC_NAME = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*")
HELP_LINE = re.compile(r"^# HELP ([a-zA-Z_:][a-zA-Z0-9_:]*) (.+)$")
TYPE_LINE = re.compile(
    r"^# TYPE ([a-zA-Z_:][a-zA-Z0-9_:]*) (counter|gauge|histogram|summary|untyped)$"
)
SAMPLE_LINE = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(?:\{(.*)\})? (\S+)$"
)
#: One label pair; the value admits only the three legal escapes.
LABEL_PAIR = re.compile(
    r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\\n]|\\\\|\\"|\\n)*)"'
)


def _parse_labels(raw):
    """``key="value",...`` -> dict, rejecting anything malformed."""
    labels = {}
    pos = 0
    while pos < len(raw):
        match = LABEL_PAIR.match(raw, pos)
        if match is None:
            raise AssertionError(f"malformed label at {raw[pos:]!r}")
        name, value = match.group(1), match.group(2)
        if name in labels:
            raise AssertionError(f"duplicate label {name!r} in {raw!r}")
        labels[name] = value
        pos = match.end()
        if pos < len(raw):
            if raw[pos] != ",":
                raise AssertionError(f"expected ',' at {raw[pos:]!r}")
            pos += 1
    return labels


def _parse_value(raw):
    if raw == "+Inf":
        return math.inf
    try:
        return float(raw)
    except ValueError:
        raise AssertionError(f"unparseable sample value {raw!r}") from None


def _family_of(name, families):
    """The declared family a sample name belongs to (histograms own their
    ``_bucket``/``_sum``/``_count`` suffixes), or None."""
    if name in families:
        return name
    for suffix in ("_bucket", "_sum", "_count"):
        if name.endswith(suffix) and name[: -len(suffix)] in families:
            return name[: -len(suffix)]
    return None


def parse_exposition(text):
    """Parse a full exposition, enforcing the format rules above.

    Returns ``{family: {"type": str, "help": str, "samples": [(name,
    labels, value), ...]}}``; raises AssertionError on any violation.
    """
    assert text.endswith("\n"), "exposition must end with a newline"
    families = {}
    pending_help = None  # HELP seen, TYPE not yet
    current = None  # family whose samples we are inside
    for lineno, line in enumerate(text.splitlines(), start=1):
        where = f"line {lineno}: {line!r}"
        assert line == line.strip(), f"stray whitespace ({where})"
        assert line, f"blank line ({where})"
        if line.startswith("#"):
            help_match = HELP_LINE.match(line)
            type_match = TYPE_LINE.match(line)
            assert help_match or type_match, f"malformed comment ({where})"
            if help_match:
                name = help_match.group(1)
                assert pending_help is None, (
                    f"HELP {pending_help} never got a TYPE ({where})"
                )
                assert name not in families, f"duplicate HELP ({where})"
                families[name] = {
                    "type": None,
                    "help": help_match.group(2),
                    "samples": [],
                }
                pending_help = name
            else:
                name = type_match.group(1)
                assert pending_help == name, (
                    f"TYPE without immediately-preceding HELP ({where})"
                )
                families[name]["type"] = type_match.group(2)
                pending_help = None
                current = name
            continue
        assert pending_help is None, (
            f"sample between HELP and TYPE ({where})"
        )
        sample = SAMPLE_LINE.match(line)
        assert sample, f"malformed sample ({where})"
        name, raw_labels, raw_value = sample.groups()
        family = _family_of(name, families)
        assert family is not None, f"sample before its TYPE ({where})"
        assert family == current, (
            f"family {family} interleaved into {current} ({where})"
        )
        ftype = families[family]["type"]
        if ftype == "histogram":
            assert name != family, (
                f"bare histogram sample ({where})"
            )
        else:
            assert name == family, (
                f"suffixed sample on a {ftype} ({where})"
            )
        labels = _parse_labels(raw_labels) if raw_labels else {}
        value = _parse_value(raw_value)
        key = (name, tuple(sorted(labels.items())))
        seen = {
            (s_name, tuple(sorted(s_labels.items())))
            for s_name, s_labels, _ in families[family]["samples"]
        }
        assert key not in seen, f"duplicate sample ({where})"
        families[family]["samples"].append((name, labels, value))
    assert pending_help is None, f"trailing HELP {pending_help} without TYPE"
    for family, data in families.items():
        assert data["samples"], f"family {family} declared but has no samples"
    return families


def check_histogram_family(family, data):
    """Bucket monotonicity, +Inf == _count, and the full triple, per
    series (labelset minus ``le``)."""
    series = {}
    for name, labels, value in data["samples"]:
        suffix = name[len(family):]
        key = tuple(
            sorted((k, v) for k, v in labels.items() if k != "le")
        )
        entry = series.setdefault(key, {"buckets": [], "sum": None,
                                        "count": None})
        if suffix == "_bucket":
            assert "le" in labels, f"{family} bucket without le"
            entry["buckets"].append((_parse_value(labels["le"]), value))
        elif suffix == "_sum":
            entry["sum"] = value
        elif suffix == "_count":
            entry["count"] = value
    for key, entry in series.items():
        label = f"{family}{dict(key)}"
        bounds = [b for b, _ in entry["buckets"]]
        counts = [c for _, c in entry["buckets"]]
        assert bounds == sorted(bounds) and len(set(bounds)) == len(bounds), (
            f"{label}: bucket bounds not strictly increasing: {bounds}"
        )
        assert bounds and bounds[-1] == math.inf, f"{label}: no +Inf bucket"
        assert counts == sorted(counts), (
            f"{label}: cumulative bucket counts decrease: {counts}"
        )
        assert entry["count"] is not None, f"{label}: missing _count"
        assert entry["sum"] is not None, f"{label}: missing _sum"
        assert counts[-1] == entry["count"], (
            f"{label}: +Inf bucket {counts[-1]} != _count {entry['count']}"
        )


@pytest.fixture
def exposition(db):
    """A fully-populated exposition: counters, gauges, breaker labels,
    latency/queue histograms, the labelled per-phase family and the
    slow-query counter all present."""
    with QueryService(
        db, workers=2, max_queue=8, trace=True, slow_query_ms=0.0
    ) as service:
        for strategy in ("magic", "ni", "magic", "kim"):
            service.submit(EMP_DEPT_QUERY, strategy=strategy)
        service.drain(timeout=30)
        yield service.stats().export("prometheus")


class TestExpositionFormat:
    def test_whole_export_parses_strictly(self, exposition):
        families = parse_exposition(exposition)
        assert "repro_queries_completed_total" in families
        assert "repro_query_latency_seconds" in families
        assert "repro_phase_seconds" in families
        assert "repro_breaker_open" in families

    def test_counters_end_in_total(self, exposition):
        families = parse_exposition(exposition)
        for family, data in families.items():
            if data["type"] == "counter":
                assert family.endswith("_total"), family

    def test_histogram_invariants(self, exposition):
        families = parse_exposition(exposition)
        histograms = [
            (family, data)
            for family, data in families.items()
            if data["type"] == "histogram"
        ]
        assert len(histograms) >= 4  # latency, depth, wait, phases
        for family, data in histograms:
            check_histogram_family(family, data)

    def test_phase_family_is_labelled_per_phase(self, exposition):
        families = parse_exposition(exposition)
        phases = {
            labels["phase"]
            for name, labels, _ in families["repro_phase_seconds"]["samples"]
            if "phase" in labels
        }
        # A traced drain always crosses at least these four phases.
        assert {"admit", "queue", "execute", "drain"} <= phases

    def test_gauges_are_bare_families(self, exposition):
        families = parse_exposition(exposition)
        for family in ("repro_in_flight", "repro_workers",
                       "repro_brownout_level"):
            data = families[family]
            assert data["type"] == "gauge"
            (sample,) = data["samples"]
            assert sample[0] == family and sample[1] == {}


class TestParserIsNotVacuous:
    """Malformed expositions must fail -- otherwise every check above
    could pass by parsing nothing."""

    def test_rejects_type_without_help(self):
        with pytest.raises(AssertionError, match="TYPE without"):
            parse_exposition("# TYPE x counter\nx 1\n")

    def test_rejects_sample_before_declaration(self):
        with pytest.raises(AssertionError, match="before its TYPE"):
            parse_exposition("x 1\n")

    def test_rejects_duplicate_samples(self):
        with pytest.raises(AssertionError, match="duplicate sample"):
            parse_exposition(
                "# HELP x h\n# TYPE x counter\nx 1\nx 2\n"
            )

    def test_rejects_bad_label_escape(self):
        with pytest.raises(AssertionError, match="malformed label"):
            parse_exposition(
                '# HELP x h\n# TYPE x gauge\nx{a="b\\q"} 1\n'
            )

    def test_rejects_unparseable_value(self):
        with pytest.raises(AssertionError, match="unparseable"):
            parse_exposition("# HELP x h\n# TYPE x gauge\nx one\n")

    def test_rejects_missing_trailing_newline(self):
        with pytest.raises(AssertionError, match="newline"):
            parse_exposition("# HELP x h\n# TYPE x gauge\nx 1")

    def test_rejects_decreasing_buckets(self):
        text = (
            "# HELP h h\n# TYPE h histogram\n"
            'h_bucket{le="0.1"} 5\nh_bucket{le="1"} 3\n'
            'h_bucket{le="+Inf"} 3\nh_sum 1\nh_count 3\n'
        )
        families = parse_exposition(text)
        with pytest.raises(AssertionError, match="decrease"):
            check_histogram_family("h", families["h"])
