"""The slow-query log: thresholds, ring bounds, rendering, integration."""

import pytest

from repro import Database, Strategy
from repro.errors import EventLogError
from repro.obs import EventLog, RingSink, SlowQueryLog, render_slow_log
from repro.trace import Tracer

QUERY = (
    "SELECT name FROM dept D WHERE D.budget < 10000 AND D.num_emps > "
    "(SELECT count(*) FROM emp E WHERE E.building = D.building)"
)


class TestSlowQueryLog:
    def test_validation(self):
        with pytest.raises(EventLogError):
            SlowQueryLog(-1)
        with pytest.raises(EventLogError):
            SlowQueryLog(10, capacity=0)

    def test_below_threshold_is_not_captured(self):
        log = SlowQueryLog(100.0)
        assert log.observe(99.9, sql="SELECT 1") is None
        assert log.records() == [] and log.total == 0

    def test_capture_carries_the_diagnosis(self):
        log = SlowQueryLog(10.0, clock=lambda: 123.0)
        record = log.observe(
            25.5, sql="SELECT x", strategy="magic", query_id=4,
            outcome="completed", degradations=["kim -> magic"],
        )
        assert record == log.records()[0]
        assert record["ts"] == 123.0
        assert record["latency_ms"] == 25.5
        assert record["threshold_ms"] == 10.0
        assert record["strategy"] == "magic"
        assert record["degradations"] == ["kim -> magic"]
        assert record["operators"] == []

    def test_ring_is_bounded_but_total_counts_everything(self):
        log = SlowQueryLog(0.0, capacity=2)
        for i in range(5):
            log.observe(float(i + 1), query_id=i)
        assert log.total == 5
        assert [r["query_id"] for r in log.records()] == [3, 4]
        assert len(log) == 2

    def test_capture_emits_query_slow_event(self):
        sink = RingSink()
        log = SlowQueryLog(1.0, events=EventLog(sink))
        log.observe(5.0, query_id=9, strategy="ni")
        [event] = sink.events()
        assert event["kind"] == "query.slow"
        assert event["query_id"] == 9
        assert event["latency_ms"] == 5.0

    def test_traced_capture_includes_top_operators(self, empdept_catalog):
        db = Database(empdept_catalog, slow_query_ms=0.0)
        tracer = Tracer()
        db.execute(QUERY, strategy=Strategy.MAGIC, tracer=tracer)
        [record] = db.slow_log.records()
        assert record["operators"]
        assert len(record["operators"]) <= db.slow_log.top_operators
        assert record["metrics"]["rows_output"] >= 1

    def test_database_below_threshold_captures_nothing(
        self, empdept_catalog
    ):
        db = Database(empdept_catalog, slow_query_ms=60_000.0)
        db.execute(QUERY, strategy=Strategy.MAGIC)
        assert db.slow_log.records() == []

    def test_shared_slow_log_across_facades(self, empdept_catalog):
        shared = SlowQueryLog(0.0)
        one = Database(empdept_catalog, slow_log=shared)
        two = Database(empdept_catalog, slow_log=shared)
        one.execute(QUERY, strategy=Strategy.MAGIC)
        two.execute(QUERY, strategy=Strategy.NESTED_ITERATION)
        assert shared.total == 2


class TestRender:
    def test_empty_log_renders_placeholder(self):
        assert "no slow queries" in render_slow_log([])

    def test_render_orders_slowest_first_and_truncates_sql(self):
        records = [
            {"latency_ms": 1.0, "query_id": 1, "sql": "SELECT 1",
             "strategy": "ni", "outcome": "completed",
             "degradations": [], "operators": []},
            {"latency_ms": 9.0, "query_id": 2, "sql": "SELECT " + "x" * 200,
             "strategy": "magic", "outcome": "failed",
             "degradations": ["kim -> magic"],
             "operators": [{"name": "groupby", "calls": 1, "rows_out": 3,
                            "elapsed_ms": 4.2}]},
        ]
        text = render_slow_log(records, indent="  ")
        lines = text.splitlines()
        assert lines[0].lstrip().startswith("9.000ms")
        assert "..." in lines[0]
        assert any("degraded: kim -> magic" in line for line in lines)
        assert any("groupby" in line for line in lines)
        assert all(line.startswith("  ") for line in lines)


class TestPhaseBreakdown:
    """PR 10: a slow-log entry answers "slow because queued or slow
    because executing" without needing a separate trace."""

    def test_capture_carries_phases_and_brownout_rung(self):
        log = SlowQueryLog(10.0)
        record = log.observe(
            150.0, sql="SELECT x", strategy="magic", query_id=3,
            phases={"queue": 120.0, "execute": 30.0}, brownout_level=2,
        )
        assert record["phases"] == {"queue": 120.0, "execute": 30.0}
        assert record["brownout_level"] == 2

    def test_render_shows_the_budget_and_rung(self):
        log = SlowQueryLog(0.0)
        log.observe(
            150.0, sql="SELECT x", strategy="magic", query_id=3,
            phases={"queue": 120.0, "execute": 30.0}, brownout_level=2,
        )
        text = render_slow_log(log.records())
        assert "phases: queue=120.000ms execute=30.000ms" in text
        assert "(brownout rung 2)" in text

    def test_unphased_capture_renders_no_budget_line(self):
        log = SlowQueryLog(0.0)
        log.observe(5.0, sql="SELECT 1", query_id=1)
        assert "phases:" not in render_slow_log(log.records())

    def test_service_slow_entries_carry_the_ticket_budget(
        self, empdept_catalog
    ):
        from repro.serve import QueryService

        db = Database(empdept_catalog)
        with QueryService(
            db, workers=1, phases=True, slow_query_ms=0.0
        ) as service:
            ticket = service.submit(QUERY, strategy="magic")
            ticket.result(timeout=30)
        [record] = service.slow_log.records()
        assert record["phases"] == ticket.phases.as_ms_dict()
        assert record["brownout_level"] == 0
