"""Perf-regression history: records, persistence, comparison."""

import json

import pytest

from repro.bench.history import (
    DEFAULT_HISTORY_PATH,
    HISTORY_ENV,
    HISTORY_VERSION,
    append_record,
    compare,
    latest,
    load_history,
    make_record,
    resolve_path,
    validate_record,
)
from repro.errors import HistoryError


def _record(**fields):
    fields.setdefault("ts", 1000.0)
    fields.setdefault("git_sha", "abc1234")
    return make_record(fields.pop("benchmark", "service_soak"), **fields)


class TestRecords:
    def test_make_record_envelope(self):
        record = _record(throughput_qps=120.5, seed=7)
        assert record["version"] == HISTORY_VERSION
        assert record["benchmark"] == "service_soak"
        assert record["ts"] == 1000.0
        assert record["git_sha"] == "abc1234"
        assert record["throughput_qps"] == 120.5
        assert record["seed"] == 7

    def test_make_record_defaults_ts(self):
        record = make_record("bench", git_sha="x")
        assert record["ts"] > 0

    def test_validate_rejects_missing_keys(self):
        with pytest.raises(HistoryError, match="missing"):
            validate_record({"version": HISTORY_VERSION, "ts": 1.0})

    def test_validate_rejects_wrong_version(self):
        bad = _record()
        bad["version"] = 99
        with pytest.raises(HistoryError, match="version"):
            validate_record(bad)

    def test_validate_rejects_bad_types(self):
        for key, value in (
            ("ts", -1.0), ("ts", True), ("benchmark", ""), ("benchmark", 3),
        ):
            bad = dict(_record())
            bad[key] = value
            with pytest.raises(HistoryError):
                validate_record(bad)

    def test_validate_rejects_unserialisable(self):
        bad = dict(_record())
        bad["payload"] = object()
        with pytest.raises(HistoryError, match="JSON"):
            validate_record(bad)

    def test_non_dict_rejected(self):
        with pytest.raises(HistoryError, match="object"):
            validate_record(["not", "a", "record"])


class TestPersistence:
    def test_resolve_path_precedence(self, monkeypatch):
        monkeypatch.delenv(HISTORY_ENV, raising=False)
        assert resolve_path() == DEFAULT_HISTORY_PATH
        assert resolve_path("explicit.jsonl") == "explicit.jsonl"
        monkeypatch.setenv(HISTORY_ENV, "from-env.jsonl")
        assert resolve_path() == "from-env.jsonl"
        assert resolve_path("explicit.jsonl") == "explicit.jsonl"
        monkeypatch.setenv(HISTORY_ENV, "")
        assert resolve_path() is None

    def test_append_disabled_via_env(self, monkeypatch):
        monkeypatch.setenv(HISTORY_ENV, "")
        assert append_record(_record()) is None

    def test_append_and_load_round_trip(self, tmp_path):
        path = str(tmp_path / "history.jsonl")
        first = _record(throughput_qps=100.0)
        second = _record(ts=2000.0, throughput_qps=110.0)
        assert append_record(first, path) == path
        assert append_record(second, path) == path
        assert load_history(path) == [first, second]
        # One sorted-keys JSON object per line, stable for diffing.
        lines = (tmp_path / "history.jsonl").read_text().splitlines()
        assert len(lines) == 2
        keys = list(json.loads(lines[0]))
        assert keys == sorted(keys)

    def test_load_rejects_malformed_line(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(json.dumps(_record()) + "\nnot json\n")
        with pytest.raises(HistoryError, match="bad.jsonl:2"):
            load_history(str(path))

    def test_load_rejects_invalid_record(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"version": 1, "ts": 1.0}\n')
        with pytest.raises(HistoryError, match="bad.jsonl:1"):
            load_history(str(path))

    def test_load_missing_file(self, tmp_path):
        with pytest.raises(HistoryError, match="cannot read"):
            load_history(str(tmp_path / "absent.jsonl"))

    def test_latest_filters_by_benchmark(self):
        records = [
            _record(benchmark="a", ts=1.0),
            _record(benchmark="b", ts=2.0),
            _record(benchmark="a", ts=3.0),
        ]
        assert latest(records)["ts"] == 3.0
        assert latest(records, "a")["ts"] == 3.0
        assert latest(records, "b")["ts"] == 2.0
        with pytest.raises(HistoryError, match="no history records"):
            latest(records, "missing")


class TestCompare:
    BASE = {"throughput_qps": 100.0, "latency_p50_ms": 10.0,
            "latency_p95_ms": 50.0}

    def test_within_tolerance_is_clean(self):
        current = {"throughput_qps": 85.0, "latency_p50_ms": 11.5,
                   "latency_p95_ms": 59.0}
        assert compare(current, self.BASE, tolerance=0.2) == []

    def test_throughput_drop_flagged(self):
        current = dict(self.BASE, throughput_qps=70.0)
        [problem] = compare(current, self.BASE, tolerance=0.2)
        assert "throughput_qps" in problem

    def test_latency_rise_flagged(self):
        current = dict(self.BASE, latency_p95_ms=61.0)
        [problem] = compare(current, self.BASE, tolerance=0.2)
        assert "latency_p95_ms" in problem

    def test_missing_metrics_skipped(self):
        assert compare({"throughput_qps": 1.0}, {}, tolerance=0.0) == []
        assert compare({}, self.BASE, tolerance=0.0) == []

    def test_non_numeric_metric_rejected(self):
        with pytest.raises(HistoryError, match="must be a number"):
            compare({"throughput_qps": "fast"}, self.BASE)
        with pytest.raises(HistoryError, match="must be a number"):
            compare(self.BASE, {"throughput_qps": True})

    def test_negative_tolerance_rejected(self):
        with pytest.raises(HistoryError, match="tolerance"):
            compare(self.BASE, self.BASE, tolerance=-0.1)

    def test_against_the_repo_baseline_shape(self):
        """BENCH_service.json (the named baseline) must expose the compare
        metrics so bench-compare can actually gate on it."""
        with open("/root/repo/BENCH_service.json") as handle:
            baseline = json.load(handle)
        for key in ("throughput_qps", "latency_p50_ms", "latency_p95_ms"):
            assert isinstance(baseline[key], (int, float))
        assert compare(baseline, baseline, tolerance=0.0) == []


class TestPhaseTotals:
    """PR 10: per-phase means join the record so bench-compare can flag a
    regression that moved latency into a phase."""

    class _Stats:
        def __init__(self, phase_histograms):
            self.phase_histograms = phase_histograms

    def test_phase_totals_from_stats_reports_means_in_ms(self):
        from repro.bench.history import phase_totals_from_stats

        stats = self._Stats({
            "queue": {"buckets": {}, "count": 4, "sum": 2.0},
            "execute": {"buckets": {}, "count": 4, "sum": 0.4},
            "optimize": {"buckets": {}, "count": 0, "sum": 0.0},
        })
        assert phase_totals_from_stats(stats) == {
            "phase_queue_ms_avg": 500.0,
            "phase_execute_ms_avg": 100.0,
        }

    def test_stats_without_phases_contribute_nothing(self):
        from repro.bench.history import phase_totals_from_stats

        assert phase_totals_from_stats(self._Stats({})) == {}
        assert phase_totals_from_stats(object()) == {}

    def test_phase_regression_is_flagged_and_absence_is_not(self):
        base = _record(throughput_qps=100.0, latency_p50_ms=10.0,
                       phase_queue_ms_avg=50.0)
        slow = _record(throughput_qps=100.0, latency_p50_ms=10.0,
                       phase_queue_ms_avg=80.0)
        problems = compare(slow, base, tolerance=0.2)
        assert any("phase_queue_ms_avg" in p for p in problems)
        # A pre-phase baseline (no phase keys) stays comparable.
        old = _record(throughput_qps=100.0, latency_p50_ms=10.0)
        assert compare(slow, old, tolerance=0.2) == []
