"""The structured event log: sinks, scoping, validation, emission sites."""

import json
import threading

import pytest

from repro import Database, Strategy
from repro.errors import EventLogError, FaultInjectedError
from repro.faults import FaultRegistry, FaultRule
from repro.guard import Limits
from repro.obs import (
    EVENT_KINDS,
    EVENTS_VERSION,
    EventLog,
    FileSink,
    RingSink,
    TeeSink,
    count_by_kind,
    load_events,
    render_event,
    validate_events,
)

QUERY = (
    "SELECT name FROM dept D WHERE D.budget < 10000 AND D.num_emps > "
    "(SELECT count(*) FROM emp E WHERE E.building = D.building)"
)


def _log(capacity: int = 4096):
    sink = RingSink(capacity=capacity)
    return EventLog(sink), sink


class TestEventLog:
    def test_no_sink_is_a_no_op(self):
        log = EventLog()
        log.emit("query.started")  # must not raise
        with pytest.raises(EventLogError):
            log.events()

    def test_seq_is_strictly_increasing_and_envelope_complete(self):
        log, sink = _log()
        log.emit("query.started", query_id=1)
        log.emit("query.finished", query_id=1, outcome="completed")
        events = sink.events()
        assert [e["seq"] for e in events] == [1, 2]
        for event in events:
            assert event["v"] == EVENTS_VERSION
            assert event["ts"] >= 0
        assert validate_events(events) == 2

    def test_scope_binds_and_restores_query_id(self):
        log, sink = _log()
        assert log.current_query_id() is None
        with log.scope(7):
            assert log.current_query_id() == 7
            log.emit("query.degraded")
            with log.scope(8):
                log.emit("fault.fired")
            log.emit("guard.budget_exceeded")
        assert log.current_query_id() is None
        assert [e["query_id"] for e in sink.events()] == [7, 8, 7]

    def test_explicit_query_id_beats_scope(self):
        log, sink = _log()
        with log.scope(7):
            log.emit("query.finished", query_id=9)
            log.emit("breaker.transition", query_id=None)
        assert [e["query_id"] for e in sink.events()] == [9, None]

    def test_concurrent_emission_keeps_seq_dense(self):
        log, sink = _log(capacity=10_000)

        def worker(n):
            for _ in range(100):
                log.emit("query.degraded", query_id=n)

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        seqs = [e["seq"] for e in sink.events()]
        assert seqs == list(range(1, 801))

    def test_ring_sink_bounds_retention(self):
        log, sink = _log(capacity=3)
        for i in range(10):
            log.emit("query.started", query_id=i)
        assert sink.total == 10
        assert [e["query_id"] for e in sink.events()] == [7, 8, 9]

    def test_ring_sink_rejects_bad_capacity(self):
        with pytest.raises(EventLogError):
            RingSink(capacity=0)

    def test_tee_and_file_sink_round_trip(self, tmp_path):
        path = tmp_path / "events.jsonl"
        ring = RingSink()
        log = EventLog(TeeSink(ring, FileSink(str(path))))
        log.emit("query.started", query_id=1)
        log.emit("query.finished", query_id=1, outcome="completed")
        log.close()
        assert load_events(str(path)) == ring.events()

    def test_events_finds_ring_inside_tee(self, tmp_path):
        ring = RingSink()
        log = EventLog(
            TeeSink(FileSink(str(tmp_path / "e.jsonl")), ring)
        )
        log.emit("fault.fired")
        assert log.events() == ring.events()
        log.close()


class TestValidation:
    def _event(self, **overrides):
        event = {
            "v": EVENTS_VERSION, "seq": 1, "ts": 1.0,
            "kind": "query.started", "query_id": 1,
        }
        event.update(overrides)
        return event

    def test_unknown_kind_rejected(self):
        with pytest.raises(EventLogError, match="unknown kind"):
            validate_events([self._event(kind="query.imaginary")])

    def test_every_declared_kind_is_accepted(self):
        events = [
            self._event(seq=i + 1, kind=kind)
            for i, kind in enumerate(EVENT_KINDS)
        ]
        assert validate_events(events) == len(EVENT_KINDS)

    def test_missing_envelope_field_rejected(self):
        event = self._event()
        del event["ts"]
        with pytest.raises(EventLogError, match="missing envelope"):
            validate_events([event])

    def test_non_increasing_seq_rejected(self):
        with pytest.raises(EventLogError, match="strictly increasing"):
            validate_events([self._event(seq=2), self._event(seq=2)])

    def test_bad_version_rejected(self):
        with pytest.raises(EventLogError, match="v must be"):
            validate_events([self._event(v=99)])

    def test_boolean_query_id_rejected(self):
        with pytest.raises(EventLogError, match="query_id"):
            validate_events([self._event(query_id=True)])

    def test_non_object_rejected(self):
        with pytest.raises(EventLogError, match="must be an object"):
            validate_events(["not an event"])

    def test_malformed_jsonl_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"v": 1, "seq": 1\nnot json\n')
        with pytest.raises(EventLogError, match="malformed JSON"):
            load_events(str(path))


class TestHelpers:
    def test_count_by_kind(self):
        log, sink = _log()
        log.emit("query.started", query_id=1)
        log.emit("query.started", query_id=2)
        log.emit("query.finished", query_id=1)
        assert count_by_kind(sink.events()) == {
            "query.started": 2, "query.finished": 1,
        }

    def test_render_event_is_one_line(self):
        log, sink = _log()
        log.emit("query.finished", query_id=3, outcome="completed",
                 latency_ms=1.5)
        line = render_event(sink.events()[0])
        assert "\n" not in line
        assert "query.finished" in line and "q3" in line
        assert "outcome='completed'" in line


class TestDatabaseEmission:
    def test_lifecycle_events_for_a_facade_query(self, empdept_catalog):
        log, sink = _log()
        db = Database(empdept_catalog, events=log)
        result = db.execute(QUERY, strategy=Strategy.MAGIC)
        assert result.rows
        kinds = [e["kind"] for e in sink.events()]
        assert kinds == ["query.started", "query.finished"]
        finished = sink.events()[-1]
        assert finished["outcome"] == "completed"
        assert finished["strategy"] == "magic"
        assert finished["metrics"]["rows_output"] == len(result.rows)
        assert finished["query_id"] == sink.events()[0]["query_id"]
        assert validate_events(sink.events()) == 2

    def test_query_ids_are_distinct_per_query(self, empdept_catalog):
        log, sink = _log()
        db = Database(empdept_catalog, events=log)
        db.execute(QUERY, strategy=Strategy.MAGIC)
        db.execute(QUERY, strategy=Strategy.NESTED_ITERATION)
        ids = {e["query_id"] for e in sink.events()}
        assert len(ids) == 2

    def test_failed_query_records_error_type(self, empdept_catalog):
        log, sink = _log()
        db = Database(empdept_catalog, events=log)
        with pytest.raises(Exception):
            db.execute("SELECT nope FROM dept", strategy=Strategy.MAGIC)
        finished = sink.events()[-1]
        assert finished["kind"] == "query.finished"
        assert finished["outcome"] == "failed"
        assert finished["error_type"]

    def test_degradation_emits_query_degraded(self, empdept_catalog):
        faults = FaultRegistry(0, (FaultRule("rewrite.strategy", 1.0),))
        log, sink = _log()
        db = Database(empdept_catalog, events=log, faults=faults)
        # Every rewrite attempt faults; the chain ends at NI which is
        # applied without a rewrite fault only if its trigger misses --
        # with rate 1.0 even NI faults, so the query fails after a full
        # chain of degradations.
        with pytest.raises(FaultInjectedError):
            db.execute(QUERY, strategy=Strategy.MAGIC, fallback=True)
        kinds = count_by_kind(sink.events())
        assert kinds.get("query.degraded", 0) >= 1
        assert kinds.get("fault.fired", 0) >= 1
        degraded = [
            e for e in sink.events() if e["kind"] == "query.degraded"
        ]
        assert degraded[0]["requested"] == "magic"
        # Engine-level events carry the same query id as the lifecycle.
        qid = sink.events()[0]["query_id"]
        assert all(e["query_id"] == qid for e in sink.events())

    def test_budget_trip_emits_guard_event(self, empdept_catalog):
        log, sink = _log()
        db = Database(empdept_catalog, events=log)
        from repro.errors import BudgetExceeded

        with pytest.raises(BudgetExceeded):
            db.execute(
                QUERY, strategy=Strategy.NESTED_ITERATION,
                limits=Limits(max_rows_scanned=1),
            )
        kinds = count_by_kind(sink.events())
        assert kinds.get("guard.budget_exceeded") == 1
        trip = [
            e for e in sink.events() if e["kind"] == "guard.budget_exceeded"
        ][0]
        assert trip["budget"] == "max_rows_scanned"
        assert trip["query_id"] == sink.events()[0]["query_id"]

    def test_events_export_is_json_serialisable(self, empdept_catalog):
        log, sink = _log()
        db = Database(empdept_catalog, events=log)
        db.execute(QUERY, strategy=Strategy.MAGIC)
        for event in sink.events():
            assert json.loads(json.dumps(event)) == event


class TestSchemaV2:
    """PR 10: v2 only *adds* the ``query.phases`` kind -- v1 streams must
    keep validating, emissions must stamp v=2, and truncating FileSink
    mode keeps a re-written path loadable."""

    def _event(self, **overrides):
        event = {
            "v": EVENTS_VERSION, "seq": 1, "ts": 1.0,
            "kind": "query.started", "query_id": 1,
        }
        event.update(overrides)
        return event

    def test_current_version_is_two(self):
        from repro.obs.events import ACCEPTED_VERSIONS

        assert EVENTS_VERSION == 2
        assert ACCEPTED_VERSIONS == frozenset((1, 2))

    def test_v1_streams_remain_valid(self):
        assert validate_events([
            self._event(v=1),
            self._event(v=1, seq=2, kind="query.finished"),
        ]) == 2

    def test_mixed_version_stream_is_valid(self):
        assert validate_events([
            self._event(v=1),
            self._event(seq=2, kind="query.phases",
                        phases={"execute": 1.0}),
        ]) == 2

    def test_emissions_stamp_the_current_version(self):
        sink = RingSink()
        EventLog(sink).emit(
            "query.phases", query_id=3, phases={"queue": 2.0}
        )
        [event] = sink.events()
        assert event["v"] == 2
        assert event["kind"] == "query.phases"
        validate_events([event])

    def test_file_sink_truncate_mode_replaces_a_stale_stream(
        self, tmp_path
    ):
        path = tmp_path / "events.jsonl"
        first = EventLog(FileSink(str(path), mode="w"))
        first.emit("query.started", query_id=1)
        first.emit("query.finished", query_id=1)
        first.close()
        # A second run onto the same path must not concatenate (append
        # mode would leave two streams with colliding seq numbers).
        second = EventLog(FileSink(str(path), mode="w"))
        second.emit("query.started", query_id=1)
        second.close()
        events = load_events(str(path))
        assert [e["seq"] for e in events] == [1]

    def test_file_sink_default_stays_append(self, tmp_path):
        path = tmp_path / "events.jsonl"
        log = EventLog(FileSink(str(path)))
        log.emit("query.started", query_id=1)
        log.close()
        again = EventLog(FileSink(str(path)))
        again.emit("fault.fired")
        again.close()
        assert len(path.read_text().splitlines()) == 2
