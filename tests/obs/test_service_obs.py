"""QueryService observability: events, slow-query capture, bucket config."""

import json

import pytest

from repro import Database, FaultRegistry, QueryService, Strategy
from repro.errors import AdmissionRejected, FaultInjectedError
from repro.obs import EventLog, RingSink, SlowQueryLog, count_by_kind
from repro.tpcd import EMP_DEPT_QUERY


def _log():
    sink = RingSink(capacity=16384)
    return EventLog(sink), sink


class KimFaults(FaultRegistry):
    """Faults every rewrite attempt of the kim strategy, nothing else
    (fault *rules* select by site, not strategy, so tests that need one
    failing strategy override the trigger)."""

    def __init__(self):
        super().__init__(0, ())

    def trigger(self, site: str, detail: str = "") -> None:
        if site == "rewrite.strategy" and detail == "kim":
            raise FaultInjectedError(site, 0, detail)


class TestBucketConfig:
    def test_defaults_when_unspecified(self, db):
        from repro.serve.service import LATENCY_BUCKETS, QUEUE_DEPTH_BUCKETS

        with QueryService(db, workers=1) as service:
            assert service._latency_buckets == LATENCY_BUCKETS
            assert service._queue_depth_buckets == QUEUE_DEPTH_BUCKETS

    def test_custom_buckets_shape_the_histograms(self, db):
        with QueryService(
            db, workers=1,
            latency_buckets=(0.5, 60.0),
            queue_depth_buckets=[0, 100],
        ) as service:
            service.submit(EMP_DEPT_QUERY, strategy="magic").result(timeout=30)
            service.drain(timeout=30)
            stats = service.stats()
        assert list(stats.latency_histogram["buckets"]) == [0.5, 60.0]
        assert stats.latency_histogram["buckets"][60.0] == 1
        assert list(stats.queue_depth_histogram["buckets"]) == [0, 100]

    @pytest.mark.parametrize("bad", [
        (), [], (1.0, 1.0), (2.0, 1.0), (0.1, "fast"), (True, 2.0),
    ])
    def test_bad_buckets_rejected(self, db, bad):
        with pytest.raises(ValueError):
            QueryService(db, workers=1, latency_buckets=bad)
        with pytest.raises(ValueError):
            QueryService(db, workers=1, queue_depth_buckets=bad)


class TestServiceEvents:
    def test_lifecycle_events_reconcile_with_stats(self, db):
        log, sink = _log()
        with QueryService(db, workers=2, events=log) as service:
            tickets = [
                service.submit(EMP_DEPT_QUERY, strategy=s)
                for s in ("magic", "ni", "kim", "dayal")
            ]
            for ticket in tickets:
                ticket.result(timeout=30)
        stats = service.stats()
        kinds = count_by_kind(sink.events())
        assert kinds["query.submitted"] == stats.submitted == 4
        assert kinds["query.admitted"] == stats.admitted == 4
        assert kinds["query.started"] == 4
        assert kinds["query.finished"] == 4
        assert "query.rejected" not in kinds
        finished = [
            e for e in sink.events() if e["kind"] == "query.finished"
        ]
        assert {e["outcome"] for e in finished} == {"completed"}
        assert {e["query_id"] for e in finished} == {
            t.query_id for t in tickets
        }

    def test_rejected_submission_emits_with_identity(self, db):
        log, sink = _log()
        service = QueryService(db, workers=1, events=log)
        service.close()
        with pytest.raises(AdmissionRejected):
            service.submit(EMP_DEPT_QUERY)
        rejected = [
            e for e in sink.events() if e["kind"] == "query.rejected"
        ]
        assert len(rejected) == 1
        assert rejected[0]["reason"] == "service closed"
        assert isinstance(rejected[0]["query_id"], int)

    def test_breaker_transition_event(self, db):
        failing = Database(db.catalog, faults=KimFaults())
        log, sink = _log()
        with QueryService(
            failing, workers=1, events=log, breaker_threshold=1,
        ) as service:
            service.submit(EMP_DEPT_QUERY, strategy="kim").wait(timeout=30)
            service.drain(timeout=30)
        transitions = [
            e for e in sink.events() if e["kind"] == "breaker.transition"
        ]
        assert transitions
        assert transitions[0]["strategy"] == "kim"
        assert transitions[0]["to_state"] == "open"

    def test_worker_facades_feed_engine_events_under_ticket_id(self, db):
        failing = Database(db.catalog, faults=KimFaults())
        log, sink = _log()
        with QueryService(failing, workers=1, events=log) as service:
            ticket = service.submit(EMP_DEPT_QUERY, strategy="kim")
            ticket.result(timeout=30)
        degraded = [
            e for e in sink.events() if e["kind"] == "query.degraded"
        ]
        assert degraded and all(
            e["query_id"] == ticket.query_id for e in degraded
        )


class TestServiceSlowLog:
    def test_slow_queries_surface_in_stats_and_export(self, db):
        with QueryService(db, workers=2, slow_query_ms=0.0) as service:
            for _ in range(3):
                service.submit(EMP_DEPT_QUERY, strategy="magic")
            service.drain(timeout=30)
            stats = service.stats()
            assert stats.slow_total == 3
            assert len(stats.slow_queries) == 3
            assert stats.slow_queries == service.slow_queries()
            record = stats.slow_queries[0]
            assert record["strategy"] == "magic"
            assert record["outcome"] == "completed"
            exported = json.loads(stats.export("json"))
            assert exported["slow_total"] == 3
            assert "repro_slow_queries_total 3" in stats.export("prometheus")

    def test_no_slow_log_exports_zero(self, db):
        with QueryService(db, workers=1) as service:
            service.submit(EMP_DEPT_QUERY).result(timeout=30)
            stats = service.stats()
        assert stats.slow_total == 0 and stats.slow_queries == []
        assert "repro_slow_queries_total 0" in stats.export("prometheus")

    def test_shared_slow_log_instance(self, db):
        shared = SlowQueryLog(0.0)
        with QueryService(db, workers=1, slow_log=shared) as service:
            service.submit(EMP_DEPT_QUERY).result(timeout=30)
            service.drain(timeout=30)
        assert shared.total == 1
        assert service.slow_log is shared

    def test_traced_service_attaches_operators_to_slow_records(self, db):
        with QueryService(
            db, workers=1, trace=True, slow_query_ms=0.0
        ) as service:
            service.submit(EMP_DEPT_QUERY, strategy="magic").result(timeout=30)
            service.drain(timeout=30)
            [record] = service.slow_queries()
        assert record["operators"]
        assert all("name" in op for op in record["operators"])
