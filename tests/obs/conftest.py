"""Observability suite fixtures.

These tests assert exact event streams and counter reconciliation, so an
ambient ``REPRO_FAULTS``/``REPRO_VALIDATE`` (e.g. from a CI matrix job)
must not leak in; fault behaviour is pinned per-test. History appends are
likewise disabled so test runs never touch ``BENCH_history.jsonl``.
"""

import pytest

from repro import Database


@pytest.fixture(autouse=True)
def _no_ambient_env(monkeypatch):
    monkeypatch.delenv("REPRO_FAULTS", raising=False)
    monkeypatch.delenv("REPRO_VALIDATE", raising=False)
    monkeypatch.setenv("REPRO_BENCH_HISTORY", "")


@pytest.fixture
def db(empdept_catalog) -> Database:
    return Database(empdept_catalog)
