"""The sampling profiler: deterministic sampling, attribution, exports."""

import json
import threading

import pytest

from repro import Database, Strategy
from repro.errors import EventLogError
from repro.obs import SamplingProfiler, profiling
from repro.obs.profiler import OP_PREFIX, active
from repro.trace import Tracer
from repro.trace import tracer as tracer_module

QUERY = (
    "SELECT name FROM dept D WHERE D.budget < 10000 AND D.num_emps > "
    "(SELECT count(*) FROM emp E WHERE E.building = D.building)"
)


class _FakeTracer:
    """Stands in for a Tracer: a fixed active-operator stack."""

    def __init__(self, stack):
        self._stack = stack

    def active_operator_stack(self):
        return list(self._stack)


def _sample_in_thread(profiler, fake=None, repeat=1):
    """Run ``repeat`` deterministic samples while a helper thread is
    parked inside a known function (so its stack is stable)."""
    ready = threading.Event()
    release = threading.Event()

    def parked_leaf():
        ready.set()
        release.wait(timeout=10)

    thread = threading.Thread(target=parked_leaf, name="parked")
    thread.start()
    try:
        assert ready.wait(timeout=10)
        if fake is not None:
            profiler.adopt(fake, thread_ident=thread.ident)
        for _ in range(repeat):
            profiler._sample_once(threading.get_ident())
    finally:
        release.set()
        thread.join()


class TestSampling:
    def test_validation(self):
        with pytest.raises(EventLogError):
            SamplingProfiler(interval=0)
        with pytest.raises(EventLogError):
            SamplingProfiler(max_depth=0)

    def test_deterministic_sample_captures_parked_thread(self):
        profiler = SamplingProfiler()
        _sample_in_thread(profiler, repeat=3)
        stacks = profiler.samples()
        parked = [
            (stack, count) for stack, count in stacks.items()
            if any(frame.endswith(".parked_leaf") for frame in stack)
        ]
        assert parked and sum(count for _, count in parked) == 3

    def test_operator_frames_prefix_the_stack_root(self):
        profiler = SamplingProfiler()
        fake = _FakeTracer(["select [3]", "hash join e [7]"])
        _sample_in_thread(profiler, fake=fake)
        stack = next(
            s for s in profiler.samples()
            if any(f.endswith(".parked_leaf") for f in s)
        )
        assert stack[0] == OP_PREFIX + "select"
        assert stack[1].startswith(OP_PREFIX + "hash join")
        # Operator attribution counts the *leaf* operator, id-stripped.
        ops = profiler.operator_samples()
        assert list(ops) == ["hash join e"]

    def test_empty_operator_stack_folds_plain(self):
        profiler = SamplingProfiler()
        _sample_in_thread(profiler, fake=_FakeTracer([]))
        assert profiler.operator_samples() == {}
        assert all(
            not frame.startswith(OP_PREFIX)
            for stack in profiler.samples() for frame in stack
        )

    def test_broken_tracer_read_loses_only_the_attribution(self):
        class Exploding:
            def active_operator_stack(self):
                raise RuntimeError("torn read")

        profiler = SamplingProfiler()
        _sample_in_thread(profiler, fake=Exploding())
        assert profiler.sample_count >= 1
        assert profiler.operator_samples() == {}

    def test_max_depth_bounds_the_stack(self):
        profiler = SamplingProfiler(max_depth=2)
        _sample_in_thread(profiler)
        assert all(len(stack) <= 2 for stack in profiler.samples())


class TestExports:
    def _profiler_with_samples(self):
        profiler = SamplingProfiler()
        fake = _FakeTracer(["groupby [2]"])
        _sample_in_thread(profiler, fake=fake, repeat=2)
        return profiler

    def test_collapsed_format(self):
        profiler = self._profiler_with_samples()
        text = profiler.collapsed()
        assert text.endswith("\n")
        lines = text.splitlines()
        assert lines == sorted(lines)
        for line in lines:
            stack, count = line.rsplit(" ", 1)
            assert int(count) >= 1
            assert ";" in stack or stack

    def test_collapsed_empty_profile_is_empty_string(self):
        assert SamplingProfiler().collapsed() == ""

    def test_speedscope_document_shape(self):
        profiler = self._profiler_with_samples()
        doc = profiler.speedscope("unit test")
        json.dumps(doc)  # serialisable
        assert doc["name"] == "unit test"
        assert doc["$schema"].startswith("https://www.speedscope.app")
        profile = doc["profiles"][0]
        assert profile["type"] == "sampled"
        assert len(profile["samples"]) == len(profile["weights"])
        assert profile["endValue"] == sum(profile["weights"])
        frames = doc["shared"]["frames"]
        for sample in profile["samples"]:
            assert all(0 <= index < len(frames) for index in sample)
        assert any(
            f["name"].startswith(OP_PREFIX) for f in frames
        )


class TestActivation:
    def test_profiling_installs_and_removes_the_tracer_hook(self):
        assert tracer_module._PROFILER_HOOK is None
        with profiling(interval=0.5) as profiler:
            assert active() is profiler
            assert tracer_module._PROFILER_HOOK is not None
            tracer = Tracer()
            assert profiler._tracers[threading.get_ident()] is tracer
        assert active() is None
        assert tracer_module._PROFILER_HOOK is None

    def test_newest_tracer_wins_per_thread(self):
        with profiling(interval=0.5) as profiler:
            Tracer()
            second = Tracer()
            assert profiler._tracers[threading.get_ident()] is second

    def test_start_twice_rejected(self):
        profiler = SamplingProfiler(interval=0.5).start()
        try:
            with pytest.raises(EventLogError):
                profiler.start()
        finally:
            profiler.stop()

    def test_stop_without_start_is_a_no_op(self):
        SamplingProfiler().stop()


class TestEndToEnd:
    def test_profiled_traced_queries_attribute_to_real_operators(
        self, empdept_catalog
    ):
        db = Database(empdept_catalog)
        with profiling(interval=0.0005) as profiler:
            for _ in range(20):
                db.execute(QUERY, strategy=Strategy.NESTED_ITERATION,
                           tracer=Tracer())
        # A wall-clock sampler cannot guarantee a sample landed inside a
        # query window, but the profile must be structurally sound and
        # any attributed operator must be one the tracer knows about.
        tracer = Tracer()
        db.execute(QUERY, strategy=Strategy.NESTED_ITERATION, tracer=tracer)
        known = {
            tracer_module._generic_operator_name(s["name"])
            for s in tracer.operator_summaries()
        }
        for name in profiler.operator_samples():
            assert name in known
