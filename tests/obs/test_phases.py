"""Phase-budget accounting: the mark-based timeline, the sum-to-latency
law, rendering, and the service integration (tickets, histograms, the
``query.phases`` event, and the phases-follow-trace default)."""

import pytest

from repro.obs import (
    PHASES,
    EventLog,
    PhaseTimeline,
    RingSink,
    check_phase_sum,
    render_phases,
    validate_events,
)
from repro.serve import QueryService
from repro.tpcd import EMP_DEPT_QUERY


class FakeClock:
    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now


class TestPhaseTimeline:
    def test_contiguous_marks_attribute_every_interval_once(self):
        clock = FakeClock(10.0)
        timeline = PhaseTimeline(start=10.0, clock=clock)
        assert timeline.mark("admit", 10.5) == 10.5
        assert timeline.mark("queue", 12.0) == 12.0
        clock.now = 12.25
        assert timeline.mark("execute") == 12.25
        assert timeline.durations == {
            "admit": 0.5, "queue": 1.5, "execute": 0.25,
        }
        assert timeline.total() == pytest.approx(2.25)

    def test_remarking_a_phase_accumulates(self):
        timeline = PhaseTimeline(start=0.0, clock=FakeClock())
        timeline.mark("rewrite", 1.0)
        timeline.mark("execute", 2.0)
        timeline.mark("rewrite", 2.5)  # retry re-enters the phase
        assert timeline.durations["rewrite"] == pytest.approx(1.5)
        assert timeline.total() == pytest.approx(2.5)

    def test_unknown_phase_rejected(self):
        timeline = PhaseTimeline(start=0.0, clock=FakeClock())
        with pytest.raises(ValueError, match="unknown phase"):
            timeline.mark("teleport", 1.0)
        assert timeline.durations == {}

    def test_dict_exports_follow_canonical_order(self):
        timeline = PhaseTimeline(start=0.0, clock=FakeClock())
        timeline.mark("execute", 1.0)
        timeline.mark("admit", 1.5)   # marked out of lifecycle order
        assert list(timeline.as_dict()) == ["admit", "execute"]
        assert timeline.as_ms_dict() == {"admit": 500.0, "execute": 1000.0}

    def test_sum_law_is_exact_when_latency_shares_the_final_read(self):
        timeline = PhaseTimeline(start=0.0, clock=FakeClock())
        for offset, phase in enumerate(PHASES, start=1):
            timeline.mark(phase, offset * 0.1)
        latency = 0.1 * len(PHASES)
        assert check_phase_sum(timeline.durations, latency) is None

    def test_sum_law_violation_reports_the_delta(self):
        problem = check_phase_sum({"execute": 1.0}, 2.0)
        assert problem is not None
        assert "1.000000000s" in problem and "2.000000000s" in problem

    def test_sum_law_tolerance_is_configurable(self):
        phases = {"execute": 1.0}
        assert check_phase_sum(phases, 1.0 + 5e-7) is None
        assert check_phase_sum(phases, 1.0 + 5e-7, tolerance=1e-8)


class TestRenderPhases:
    def test_only_marked_phases_render_longest_gets_full_width(self):
        lines = render_phases(
            {"queue": 0.3, "execute": 0.1}, width=10, indent="> "
        )
        assert len(lines) == 2
        assert lines[0].startswith("> queue")
        assert lines[0].endswith("#" * 10)
        assert lines[1].startswith("> execute")
        assert lines[1].rstrip().endswith("#" * 3)
        assert " 75.0%" in lines[0] and " 25.0%" in lines[1]

    def test_empty_budget_renders_nothing(self):
        assert render_phases({}) == []


class TestServicePhases:
    def _drain(self, db, n=3, **kwargs):
        sink = RingSink(capacity=16384)
        with QueryService(
            db, workers=2, events=EventLog(sink), **kwargs
        ) as service:
            tickets = [
                service.submit(EMP_DEPT_QUERY, strategy="magic")
                for _ in range(n)
            ]
            service.drain(timeout=30)
            stats = service.stats()
        return tickets, stats, sink.events()

    def test_every_terminal_ticket_satisfies_the_sum_law(self, db):
        tickets, stats, events = self._drain(db, phases=True)
        for ticket in tickets:
            assert ticket.phases is not None
            assert check_phase_sum(
                ticket.phases.durations, ticket.latency
            ) is None
        # Histograms cover every completion, keyed by phase name.
        assert set(stats.phase_histograms) <= set(PHASES)
        for name in ("admit", "queue", "execute", "drain"):
            assert stats.phase_histograms[name]["count"] == len(tickets)

    def test_query_phases_event_matches_the_ticket(self, db):
        tickets, _, events = self._drain(db, phases=True)
        validate_events(events)
        phased = [e for e in events if e["kind"] == "query.phases"]
        assert len(phased) == len(tickets)
        by_id = {e["query_id"]: e for e in phased}
        for ticket in tickets:
            event = by_id[ticket.query_id]
            assert event["phases"] == ticket.phases.as_ms_dict()
            assert event["outcome"] == "completed"
            assert event["latency_ms"] == round(ticket.latency * 1000, 3)
            assert event["brownout_level"] == 0

    def test_phases_default_follows_trace(self, db):
        tickets, stats, events = self._drain(db, trace=True)
        assert all(t.phases is not None for t in tickets)
        assert stats.phase_histograms

    def test_phases_off_by_default_and_stamps_nothing(self, db):
        tickets, stats, events = self._drain(db)
        assert all(t.phases is None for t in tickets)
        assert stats.phase_histograms == {}
        assert not [e for e in events if e["kind"] == "query.phases"]

    def test_failed_queries_keep_the_sum_law(self, db):
        sink = RingSink(capacity=16384)
        with QueryService(
            db, workers=1, phases=True, events=EventLog(sink)
        ) as service:
            ticket = service.submit(EMP_DEPT_QUERY, deadline=0.0)
            ticket.wait(30)
        assert ticket.error() is not None
        assert check_phase_sum(
            ticket.phases.durations, ticket.latency
        ) is None
        [event] = [e for e in sink.events() if e["kind"] == "query.phases"]
        assert event["outcome"] == "failed"
