"""``repro why``: the event-log/trace join and the rendered waterfall."""

import json

import pytest

from repro.errors import EventLogError
from repro.obs import (
    EventLog,
    RingSink,
    build_timeline,
    render_timeline,
    worker_spans,
)
from repro.serve import QueryService
from repro.tpcd import EMP_DEPT_QUERY


def _event(seq, ts, kind, query_id, **detail):
    return {"v": 2, "seq": seq, "ts": ts, "kind": kind,
            "query_id": query_id, **detail}


@pytest.fixture
def events():
    """A hand-built stream: query 7 completes with phases and one budget
    trip; query 8 is rejected; a breaker transition overlaps 7's lifetime
    and a brownout move falls outside it."""
    return [
        _event(1, 100.0, "query.submitted", 7, strategy="magic",
               priority="high"),
        _event(2, 100.001, "query.admitted", 7, queue_depth=3,
               priority="high"),
        _event(3, 100.05, "breaker.transition", None, strategy="kim",
               to="open"),
        _event(4, 100.1, "query.started", 7, strategy="magic"),
        _event(5, 100.15, "guard.budget_exceeded", 7, budget="rows",
               limit=100, observed=150),
        _event(6, 100.2, "query.finished", 7, outcome="completed",
               strategy="magic", latency_ms=200.0,
               metrics={"rows_scanned": 150, "rows_output": 0}),
        _event(7, 100.201, "query.phases", 7, outcome="completed",
               latency_ms=200.0, brownout_level=2,
               phases={"admit": 1.0, "queue": 99.0, "execute": 100.0}),
        _event(8, 103.0, "query.submitted", 8, strategy="ni",
               priority="low"),
        _event(9, 103.001, "query.rejected", 8, reason="queue full",
               retry_after_hint=0.5),
        _event(10, 104.0, "overload.brownout", None, rung=1),  # after 7
    ]


TRACE = {
    "version": 2,
    "spans": [
        {
            "name": "parallel magic_decorrelated", "kind": "operator",
            "children": [
                {
                    "name": "worker 0", "kind": "worker",
                    "attrs": {"worker_id": 0, "pid": 4242},
                    "children": [
                        {
                            "name": "dispatch t.0#0", "kind": "dispatch",
                            "elapsed_s": 0.012,
                            "attrs": {"task": "t.0", "attempt": 0,
                                      "outcome": "retried",
                                      "reason": "process died"},
                            "children": [],
                        },
                    ],
                },
                {
                    "name": "worker 1", "kind": "worker",
                    "attrs": {"worker_id": 1, "pid": 4243},
                    "children": [
                        {
                            "name": "dispatch t.0#1", "kind": "dispatch",
                            "elapsed_s": 0.034,
                            "attrs": {"task": "t.0", "attempt": 1,
                                      "outcome": "accepted"},
                            "children": [
                                {"name": "scan dept_p0", "kind": "operator",
                                 "elapsed_s": 0.01, "children": []},
                            ],
                        },
                    ],
                },
            ],
        },
    ],
}


class TestBuildTimeline:
    def test_unknown_query_id_raises(self, events):
        with pytest.raises(EventLogError, match="no events .* query 99"):
            build_timeline(99, events)

    def test_summary_joins_the_lifecycle(self, events):
        timeline = build_timeline(7, events)
        summary = timeline["summary"]
        assert summary["outcome"] == "completed"
        assert summary["strategy"] == "magic"
        assert summary["priority"] == "high"
        assert summary["latency_ms"] == 200.0
        assert summary["brownout_level"] == 2
        assert summary["phases"] == {
            "admit": 1.0, "queue": 99.0, "execute": 100.0,
        }
        assert summary["metrics"]["rows_scanned"] == 150
        assert [t["budget"] for t in timeline["budget_trips"]] == ["rows"]

    def test_steps_are_offset_from_submission(self, events):
        timeline = build_timeline(7, events)
        kinds = [s["kind"] for s in timeline["steps"]]
        assert kinds == ["query.submitted", "query.admitted",
                         "query.started", "guard.budget_exceeded",
                         "query.finished", "query.phases"]
        offsets = [s["offset_ms"] for s in timeline["steps"]]
        assert offsets[0] == 0.0
        assert offsets == sorted(offsets)
        assert offsets[-1] == pytest.approx(201.0)

    def test_context_is_windowed_to_the_query_lifetime(self, events):
        timeline = build_timeline(7, events)
        # The breaker transition at +50ms overlaps; the brownout move
        # fired seconds after the query resolved and must not appear.
        assert [c["kind"] for c in timeline["context"]] == [
            "breaker.transition"
        ]

    def test_rejected_query_summary(self, events):
        timeline = build_timeline(8, events)
        assert timeline["summary"]["outcome"] == "rejected"
        assert timeline["summary"]["rejected_reason"] == "queue full"
        assert timeline["workers"] == []

    def test_worker_spans_extracts_grafted_blocks(self):
        blocks = worker_spans(TRACE)
        assert [b["name"] for b in blocks] == ["worker 0", "worker 1"]
        timeline_workers = build_timeline(
            7, [_event(1, 0.0, "query.submitted", 7)], trace=TRACE
        )["workers"]
        assert timeline_workers == blocks

    def test_payload_is_json_serialisable(self, events):
        timeline = build_timeline(7, events, trace=TRACE)
        assert json.loads(json.dumps(timeline)) == timeline


class TestRenderTimeline:
    def test_waterfall_carries_every_section(self, events):
        text = render_timeline(build_timeline(7, events, trace=TRACE))
        assert text.startswith(
            "query 7: completed via magic in 200.000ms"
        )
        assert "priority high" in text and "brownout rung 2" in text
        assert "phase budget:" in text
        assert "queue" in text and "#" in text
        assert "timeline:" in text
        assert "budget trips:" in text
        assert "budget consumption: rows_scanned=150" in text
        assert "rows_output" not in text  # zero-valued metrics dropped
        assert "concurrent service context:" in text
        assert "worker processes (grafted spans):" in text
        assert "worker 0 (pid 4242): 1 dispatches" in text
        assert "retried [process died]" in text
        assert "accepted -- scan dept_p0" in text

    def test_rejected_render_has_no_phase_or_worker_sections(self, events):
        text = render_timeline(build_timeline(8, events))
        assert "rejected" in text and "reason: queue full" in text
        assert "phase budget:" not in text
        assert "worker processes" not in text


class TestServiceIntegration:
    def test_live_ring_round_trips_through_the_join(self, db):
        sink = RingSink(capacity=16384)
        with QueryService(
            db, workers=2, phases=True, events=EventLog(sink)
        ) as service:
            ticket = service.submit(EMP_DEPT_QUERY, strategy="magic")
            ticket.result(timeout=30)
        timeline = build_timeline(ticket.query_id, sink.events())
        assert timeline["summary"]["outcome"] == "completed"
        assert timeline["summary"]["phases"] == ticket.phases.as_ms_dict()
        text = render_timeline(timeline)
        assert "phase budget:" in text and "query.finished" in text
