"""Unit tests for predicate pushdown."""

from collections import Counter


from repro.exec import execute_graph
from repro.qgm import build_qgm, iter_boxes, validate_graph
from repro.qgm.model import GroupByBox, SelectBox, SetOpBox
from repro.rewrite.pushdown import push_down_predicates
from repro.sql.parser import parse_statement


def build(sql, catalog):
    graph = build_qgm(parse_statement(sql), catalog)
    validate_graph(graph, catalog)
    return graph


def check_preserves(graph, catalog):
    before = Counter(execute_graph(graph, catalog)[0])
    changed = push_down_predicates(graph)
    validate_graph(graph, catalog)
    after = Counter(execute_graph(graph, catalog)[0])
    assert after == before
    return changed


class TestDistinctPushdown:
    def test_filter_sinks_below_distinct(self, empdept_catalog):
        graph = build(
            """
            SELECT t.building FROM
              (SELECT DISTINCT building FROM dept) AS t
            WHERE t.building <> 'B1'
            """,
            empdept_catalog,
        )
        assert check_preserves(graph, empdept_catalog)
        distinct_box = next(
            b for b in iter_boxes(graph.root)
            if isinstance(b, SelectBox) and b.distinct
        )
        assert distinct_box.predicates  # the filter moved inside

    def test_predicate_over_two_quantifiers_stays(self, empdept_catalog):
        graph = build(
            """
            SELECT 1 FROM
              (SELECT DISTINCT building FROM dept) AS a,
              (SELECT DISTINCT building FROM emp) AS b
            WHERE a.building = b.building
            """,
            empdept_catalog,
        )
        assert not check_preserves(graph, empdept_catalog)


class TestGroupByPushdown:
    def test_group_column_filter_sinks(self, empdept_catalog):
        graph = build(
            """
            SELECT t.building, t.c FROM
              (SELECT building, count(*) AS c FROM emp
               GROUP BY building) AS t
            WHERE t.building <> 'B1'
            """,
            empdept_catalog,
        )
        assert check_preserves(graph, empdept_catalog)
        # The filter now sits below the GroupBy, in its input SPJ.
        group_box = next(
            b for b in iter_boxes(graph.root) if isinstance(b, GroupByBox)
        )
        input_box = group_box.quantifier.box
        assert isinstance(input_box, SelectBox)
        assert input_box.predicates

    def test_aggregate_filter_stays(self, empdept_catalog):
        graph = build(
            """
            SELECT t.building FROM
              (SELECT building, count(*) AS c FROM emp
               GROUP BY building) AS t
            WHERE t.c > 1
            """,
            empdept_catalog,
        )
        changed = check_preserves(graph, empdept_catalog)
        assert not changed  # HAVING-like predicates must not sink


class TestSetOpPushdown:
    def test_filter_sinks_into_both_union_arms(self, empdept_catalog):
        graph = build(
            """
            SELECT t.b FROM
              ((SELECT building AS b FROM dept)
               UNION ALL
               (SELECT building AS b FROM emp)) AS t
            WHERE t.b = 'B1'
            """,
            empdept_catalog,
        )
        assert check_preserves(graph, empdept_catalog)
        union = next(
            b for b in iter_boxes(graph.root) if isinstance(b, SetOpBox)
        )
        for q in union.quantifiers:
            assert q.box.predicates

    def test_intersect_pushdown(self, empdept_catalog):
        graph = build(
            """
            SELECT t.b FROM
              ((SELECT building AS b FROM dept)
               INTERSECT
               (SELECT building AS b FROM emp)) AS t
            WHERE t.b <> 'B9'
            """,
            empdept_catalog,
        )
        assert check_preserves(graph, empdept_catalog)

    def test_except_pushdown(self, empdept_catalog):
        graph = build(
            """
            SELECT t.b FROM
              ((SELECT building AS b FROM dept)
               EXCEPT
               (SELECT building AS b FROM emp)) AS t
            WHERE t.b LIKE 'B%'
            """,
            empdept_catalog,
        )
        assert check_preserves(graph, empdept_catalog)


class TestSafety:
    def test_shared_boxes_untouched(self, empdept_catalog):
        from repro import Database, Strategy

        # A decorrelated graph shares the supplementary box; pushdown into
        # it would filter one consumer's rows for both.
        db = Database(empdept_catalog)
        sql = """
            SELECT d.name FROM dept d
            WHERE d.budget < 10000 AND d.num_emps >
              (SELECT count(*) FROM emp e WHERE e.building = d.building)
        """
        graph = db.rewrite(parse_statement(sql), Strategy.MAGIC)
        before = Counter(execute_graph(graph, db.catalog)[0])
        push_down_predicates(graph)
        validate_graph(graph, db.catalog)
        after = Counter(execute_graph(graph, db.catalog)[0])
        assert after == before

    def test_subquery_predicates_never_move(self, empdept_catalog):
        graph = build(
            """
            SELECT t.building FROM
              (SELECT DISTINCT building FROM dept) AS t
            WHERE t.building IN (SELECT building FROM emp)
            """,
            empdept_catalog,
        )
        assert not check_preserves(graph, empdept_catalog)
