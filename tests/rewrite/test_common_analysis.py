"""Unit tests for the decorrelation pattern matchers and analyses."""

import pytest

from repro.errors import NotApplicableError
from repro.qgm import build_qgm
from repro.qgm.expr import BoxScalarSubquery, walk_expr
from repro.rewrite.decorrelate.common import (
    correlation_refs_into,
    extract_equality_correlations,
    match_outer_agg_subquery,
    match_scalar_agg,
    node_use_is_null_rejecting,
    require_linear,
)
from repro.sql.parser import parse_statement


def build(sql, catalog):
    return build_qgm(parse_statement(sql), catalog)


def scalar_node(graph):
    for box in [graph.root]:
        for expr in box.own_exprs():
            for n in walk_expr(expr):
                if isinstance(n, BoxScalarSubquery):
                    return box, n
    raise AssertionError("no scalar subquery found")


class TestMatchScalarAgg:
    def test_plain_aggregate(self, empdept_catalog):
        g = build(
            "SELECT name FROM dept d WHERE num_emps > "
            "(SELECT count(*) FROM emp e WHERE e.building = d.building)",
            empdept_catalog,
        )
        _, node = scalar_node(g)
        pattern = match_scalar_agg(node)
        assert pattern is not None
        assert pattern.wrapper is None
        assert pattern.count_outputs == ["count"]

    def test_wrapped_aggregate(self, empdept_catalog):
        g = build(
            "SELECT name FROM dept d WHERE budget > "
            "(SELECT 0.2 * avg(e.salary) FROM emp e "
            " WHERE e.building = d.building)",
            empdept_catalog,
        )
        _, node = scalar_node(g)
        pattern = match_scalar_agg(node)
        assert pattern is not None
        assert pattern.wrapper is not None
        assert pattern.count_outputs == []

    def test_non_aggregate_subquery_rejected(self, empdept_catalog):
        g = build(
            "SELECT name FROM dept d WHERE budget > "
            "(SELECT e.salary FROM emp e WHERE e.building = d.building "
            " AND e.salary > 119)",
            empdept_catalog,
        )
        _, node = scalar_node(g)
        assert match_scalar_agg(node) is None

    def test_grouped_aggregate_rejected(self, empdept_catalog):
        g = build(
            "SELECT name FROM dept WHERE budget > "
            "(SELECT max(c) FROM (SELECT count(*) AS c FROM emp "
            " GROUP BY building) AS t)",
            empdept_catalog,
        )
        _, node = scalar_node(g)
        pattern = match_scalar_agg(node)
        # max(c) over a derived table is a scalar agg over an SPJ: fine.
        assert pattern is not None


class TestNullRejection:
    def get(self, sql, catalog):
        g = build(sql, catalog)
        return scalar_node(g)

    def test_comparison_in_where_is_null_rejecting(self, empdept_catalog):
        box, node = self.get(
            "SELECT name FROM dept d WHERE budget > "
            "(SELECT min(salary) FROM emp e WHERE e.building = d.building)",
            empdept_catalog,
        )
        assert node_use_is_null_rejecting(box, node)

    def test_arithmetic_inside_comparison_still_rejecting(self, empdept_catalog):
        box, node = self.get(
            "SELECT name FROM dept d WHERE budget > 2 * "
            "(SELECT min(salary) FROM emp e WHERE e.building = d.building) + 1",
            empdept_catalog,
        )
        assert node_use_is_null_rejecting(box, node)

    def test_select_list_use_is_not(self, empdept_catalog):
        box, node = self.get(
            "SELECT name, (SELECT min(salary) FROM emp e "
            "WHERE e.building = d.building) FROM dept d",
            empdept_catalog,
        )
        assert not node_use_is_null_rejecting(box, node)

    def test_or_context_is_not(self, empdept_catalog):
        box, node = self.get(
            "SELECT name FROM dept d WHERE budget < 100 OR budget > "
            "(SELECT min(salary) FROM emp e WHERE e.building = d.building)",
            empdept_catalog,
        )
        assert not node_use_is_null_rejecting(box, node)

    def test_coalesce_context_is_not(self, empdept_catalog):
        box, node = self.get(
            "SELECT name FROM dept d WHERE budget > coalesce("
            "(SELECT min(salary) FROM emp e WHERE e.building = d.building), 0)",
            empdept_catalog,
        )
        assert not node_use_is_null_rejecting(box, node)

    def test_is_null_context_is_not(self, empdept_catalog):
        box, node = self.get(
            "SELECT name FROM dept d WHERE "
            "(SELECT min(salary) FROM emp e WHERE e.building = d.building) "
            "IS NULL",
            empdept_catalog,
        )
        assert not node_use_is_null_rejecting(box, node)

    def test_not_context_still_rejecting(self, empdept_catalog):
        box, node = self.get(
            "SELECT name FROM dept d WHERE NOT (budget > "
            "(SELECT min(salary) FROM emp e WHERE e.building = d.building))",
            empdept_catalog,
        )
        assert node_use_is_null_rejecting(box, node)


class TestEqualityCorrelations:
    def test_simple_equality_extracted(self, empdept_catalog):
        g = build(
            "SELECT name FROM dept d WHERE num_emps > "
            "(SELECT count(*) FROM emp e WHERE e.building = d.building "
            " AND e.salary > 50)",
            empdept_catalog,
        )
        _, node = scalar_node(g)
        pattern = match_scalar_agg(node)
        correlations = extract_equality_correlations(pattern.spj, g.root)
        assert correlations is not None and len(correlations) == 1
        assert correlations[0].inner.column == "building"
        assert correlations[0].outer.column == "building"

    def test_non_equality_returns_none(self, empdept_catalog):
        g = build(
            "SELECT name FROM dept d WHERE num_emps > "
            "(SELECT count(*) FROM emp e WHERE e.salary < d.budget)",
            empdept_catalog,
        )
        _, node = scalar_node(g)
        pattern = match_scalar_agg(node)
        assert extract_equality_correlations(pattern.spj, g.root) is None

    def test_correlation_in_output_returns_none(self, empdept_catalog):
        g = build(
            "SELECT name FROM dept d WHERE budget > "
            "(SELECT sum(e.salary + d.num_emps) FROM emp e "
            " WHERE e.building = d.building)",
            empdept_catalog,
        )
        _, node = scalar_node(g)
        pattern = match_scalar_agg(node)
        assert extract_equality_correlations(pattern.spj, g.root) is None


class TestOuterMatch:
    def test_linear_check(self, empdept_catalog):
        g = build(
            "SELECT building FROM dept UNION SELECT building FROM emp",
            empdept_catalog,
        )
        with pytest.raises(NotApplicableError):
            require_linear(g.root, "Kim")

    def test_multiple_subqueries_rejected(self, empdept_catalog):
        g = build(
            """
            SELECT name FROM dept d
            WHERE num_emps > (SELECT count(*) FROM emp e
                              WHERE e.building = d.building)
              AND budget > (SELECT sum(e2.salary) FROM emp e2
                            WHERE e2.building = d.building)
            """,
            empdept_catalog,
        )
        with pytest.raises(NotApplicableError, match="more than one"):
            match_outer_agg_subquery(g.root, "Kim")

    def test_select_list_subquery_rejected(self, empdept_catalog):
        g = build(
            "SELECT name, (SELECT count(*) FROM emp e "
            "WHERE e.building = d.building) FROM dept d",
            empdept_catalog,
        )
        with pytest.raises(NotApplicableError, match="select list"):
            match_outer_agg_subquery(g.root, "Kim")

    def test_exists_rejected(self, empdept_catalog):
        g = build(
            "SELECT name FROM dept d WHERE EXISTS "
            "(SELECT 1 FROM emp e WHERE e.building = d.building)",
            empdept_catalog,
        )
        with pytest.raises(NotApplicableError, match="existential"):
            match_outer_agg_subquery(g.root, "Kim")

    def test_uncorrelated_rejected_for_kim(self, empdept_catalog):
        g = build(
            "SELECT name FROM dept WHERE num_emps > "
            "(SELECT count(*) FROM emp)",
            empdept_catalog,
        )
        with pytest.raises(NotApplicableError):
            match_outer_agg_subquery(g.root, "Kim", require_equality=True)

    def test_correlation_refs_deduplicated(self, empdept_catalog):
        g = build(
            """
            SELECT name FROM dept d
            WHERE num_emps > (SELECT count(*) FROM emp e
                              WHERE e.building = d.building
                                AND e.name <> d.building)
            """,
            empdept_catalog,
        )
        _, node = scalar_node(g)
        refs = correlation_refs_into(node.box, g.root)
        assert len(refs) == 1  # (d, building) referenced twice, counted once
