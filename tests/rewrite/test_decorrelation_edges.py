"""Edge cases for magic decorrelation beyond the paper's main shapes."""

from collections import Counter

import pytest

from repro import Database, Strategy


@pytest.fixture
def db(empdept_catalog) -> Database:
    return Database(empdept_catalog)


def assert_same(db, sql):
    oracle = Counter(db.execute(sql, strategy=Strategy.NESTED_ITERATION).rows)
    for strategy in (Strategy.MAGIC, Strategy.MAGIC_OPT):
        assert Counter(db.execute(sql, strategy=strategy).rows) == oracle, (
            strategy
        )
    return oracle


class TestHavingLevelCorrelation:
    def test_subquery_in_having(self, db):
        sql = """
            SELECT d.building, count(*) FROM dept d
            GROUP BY d.building
            HAVING count(*) > (SELECT count(*) FROM emp e
                               WHERE e.building = d.building)
        """
        assert_same(db, sql)

    def test_correlated_subquery_under_outer_group(self, db):
        sql = """
            SELECT sum(d.num_emps) FROM dept d
            WHERE d.num_emps = (SELECT count(*) FROM emp e
                                WHERE e.building = d.building)
        """
        assert_same(db, sql)


class TestMixedForms:
    def test_scalar_and_exists_in_one_block(self, db):
        sql = """
            SELECT d.name FROM dept d
            WHERE d.num_emps > (SELECT count(*) FROM emp e
                                WHERE e.building = d.building)
              AND EXISTS (SELECT 1 FROM emp e2
                          WHERE e2.building = d.building OR d.budget < 600)
        """
        assert_same(db, sql)

    def test_subquery_over_view(self, db):
        db.execute_script(
            "CREATE VIEW wellpaid AS "
            "SELECT building, salary FROM emp WHERE salary > 80"
        )
        sql = """
            SELECT d.name FROM dept d
            WHERE d.num_emps >= (SELECT count(*) FROM wellpaid w
                                 WHERE w.building = d.building)
        """
        assert_same(db, sql)

    def test_arithmetic_correlation_binding(self, db):
        # The binding is an expression over the outer row, not a bare column.
        sql = """
            SELECT d.name FROM dept d
            WHERE d.num_emps > (SELECT count(*) FROM emp e
                                WHERE e.salary = d.budget / 50)
        """
        assert_same(db, sql)

    def test_distinct_outer_block(self, db):
        sql = """
            SELECT DISTINCT d.building FROM dept d
            WHERE d.num_emps > (SELECT count(*) FROM emp e
                                WHERE e.building = d.building)
        """
        assert_same(db, sql)

    def test_order_by_with_decorrelation(self, db):
        sql = """
            SELECT d.name FROM dept d
            WHERE d.num_emps > (SELECT count(*) FROM emp e
                                WHERE e.building = d.building)
            ORDER BY d.name DESC
        """
        ni = db.execute(sql).rows
        magic = db.execute(sql, strategy=Strategy.MAGIC).rows
        assert ni == magic  # order preserved, not just multisets

    def test_limit_applies_after_decorrelation(self, db):
        sql = """
            SELECT d.name FROM dept d
            WHERE d.num_emps > (SELECT count(*) FROM emp e
                                WHERE e.building = d.building)
            ORDER BY d.name LIMIT 2
        """
        assert db.execute(sql).rows == db.execute(
            sql, strategy=Strategy.MAGIC
        ).rows

    def test_subquery_against_empty_inner_table(self, db):
        db.execute_script("CREATE TABLE empty_t (x TEXT, y FLOAT)")
        sql = """
            SELECT d.name FROM dept d
            WHERE d.num_emps > (SELECT count(*) FROM empty_t t
                                WHERE t.x = d.building)
        """
        oracle = assert_same(db, sql)
        # COUNT over an empty table is 0 for every binding.
        assert len(oracle) == 6

    def test_empty_outer_table(self, db):
        db.execute_script("CREATE TABLE empty_o (a TEXT, b INT)")
        sql = """
            SELECT o.a FROM empty_o o
            WHERE o.b > (SELECT count(*) FROM emp e WHERE e.building = o.a)
        """
        assert assert_same(db, sql) == Counter()

    def test_self_correlation(self, db):
        # Inner and outer range over the same table.
        sql = """
            SELECT e.name FROM emp e
            WHERE e.salary > (SELECT avg(e2.salary) FROM emp e2
                              WHERE e2.building = e.building)
        """
        assert_same(db, sql)

    def test_three_level_nesting(self, db):
        sql = """
            SELECT d.name FROM dept d
            WHERE d.num_emps >= (SELECT count(*) FROM emp e
              WHERE e.building = d.building AND e.salary >
                (SELECT avg(e2.salary) FROM emp e2
                 WHERE e2.building = e.building AND e2.empno <=
                   (SELECT max(e3.empno) FROM emp e3
                    WHERE e3.building = d.building)))
        """
        assert_same(db, sql)


class TestCseModes:
    def test_modes_agree(self, db):
        sql = """
            SELECT d.name FROM dept d
            WHERE d.num_emps > (SELECT count(*) FROM emp e
                                WHERE e.building = d.building)
        """
        recompute = db.execute(sql, strategy=Strategy.MAGIC,
                               cse_mode="recompute")
        materialize = db.execute(sql, strategy=Strategy.MAGIC,
                                 cse_mode="materialize")
        assert Counter(recompute.rows) == Counter(materialize.rows)
        assert (
            materialize.metrics.rows_scanned < recompute.metrics.rows_scanned
        )
