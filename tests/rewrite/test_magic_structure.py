"""Structural tests: the magic-rewritten graph has the paper's shape.

Section 2.1 spells out the rewritten example as five views: Supp_Dept,
Magic, Decorr_SubQuery, BugRemoval, and the final join. These tests check
the rewritten QGM piece by piece against that blueprint.
"""

import pytest

from repro import Database, Strategy
from repro.qgm import iter_boxes
from repro.qgm.expr import walk_expr
from repro.qgm.model import GroupByBox, OuterJoinBox, SelectBox, SetOpBox
from repro.sql import ast
from repro.sql.parser import parse_statement

PAPER_QUERY = """
    Select D.name From Dept D
    Where D.budget < 10000 and D.num_emps >
      (Select Count(*) From Emp E Where D.building = E.building)
"""


@pytest.fixture
def graph(empdept_catalog):
    db = Database(empdept_catalog)
    return db.rewrite(parse_statement(PAPER_QUERY), Strategy.MAGIC)


def boxes_of(graph, kind):
    return [b for b in iter_boxes(graph.root) if isinstance(b, kind)]


class TestPaperBlueprint:
    def test_supplementary_box(self, graph):
        # Supp_Dept: the dept scan with the budget predicate, shared by the
        # root and the magic chain (the common subexpression).
        from repro.qgm.analysis import parent_edges

        parents = parent_edges(graph.root)
        shared = [
            b for b in iter_boxes(graph.root)
            if len(parents[b.id]) == 2 and isinstance(b, SelectBox)
            and not b.distinct  # the magic box is also shared (DS + LOJ)
        ]
        assert len(shared) == 1
        supp = shared[0]
        assert any("budget" in repr(p) for p in supp.predicates)

    def test_magic_box_is_distinct_projection(self, graph):
        distinct_boxes = [
            b for b in boxes_of(graph, SelectBox) if b.distinct
        ]
        assert len(distinct_boxes) == 1
        magic = distinct_boxes[0]
        assert len(magic.outputs) == 1  # the single binding column
        assert not magic.predicates

    def test_decorrelated_subquery_groups_by_binding(self, graph):
        group_boxes = boxes_of(graph, GroupByBox)
        assert len(group_boxes) == 1
        group = group_boxes[0]
        assert len(group.group_by) == 1  # grouped by the binding column
        aggs = [
            o for o in group.outputs
            if isinstance(o.expr, ast.AggregateCall)
        ]
        assert len(aggs) == 1 and aggs[0].expr.is_count

    def test_bug_removal_outer_join_with_coalesce(self, graph):
        loj_boxes = boxes_of(graph, OuterJoinBox)
        assert len(loj_boxes) == 1
        bug_removal = loj_boxes[0]
        coalesces = [
            n
            for o in bug_removal.outputs
            for n in walk_expr(o.expr)
            if isinstance(n, ast.FunctionCall) and n.name == "coalesce"
        ]
        assert len(coalesces) == 1
        assert coalesces[0].args[1] == ast.Literal(0)

    def test_final_join_enforces_correlation(self, graph):
        root = graph.root
        assert isinstance(root, SelectBox)
        null_safe = [
            p for p in root.predicates
            if isinstance(p, ast.Comparison) and p.op == "<=>"
        ]
        assert len(null_safe) == 1  # the CI equi-join on the binding

    def test_no_correlation_left(self, graph):
        from repro.qgm.analysis import external_column_refs

        assert external_column_refs(graph.root) == []
        for box in iter_boxes(graph.root):
            for expr in box.own_exprs():
                for node in walk_expr(expr):
                    assert not isinstance(node, ast.ScalarSubquery)


class TestQuery3Shape:
    def test_union_absorbs_binding_into_both_arms(self, empdept_catalog):
        db = Database(empdept_catalog)
        sql = """
            SELECT d.name, dt.s FROM dept d, DT(s) AS
              (SELECT sum(bal) FROM DDT(bal) AS
                ((SELECT e.salary FROM emp e WHERE e.building = d.building)
                 UNION ALL
                 (SELECT e2.salary FROM emp e2
                  WHERE e2.building = d.building)))
        """
        graph = db.rewrite(parse_statement(sql), Strategy.MAGIC)
        setops = [b for b in iter_boxes(graph.root) if isinstance(b, SetOpBox)]
        assert len(setops) == 1
        union = setops[0]
        # Each arm gained the binding column: arity 2 (value, binding).
        assert len(union.output_names()) == 2
        for q in union.quantifiers:
            assert len(q.box.output_names()) == 2
        # GroupBy above the union groups by the binding.
        groups = [b for b in iter_boxes(graph.root) if isinstance(b, GroupByBox)]
        assert any(len(g.group_by) == 1 for g in groups)


class TestExistentialShape:
    def test_ci_box_probes_materialised_ds(self, empdept_catalog):
        db = Database(empdept_catalog)
        sql = """
            SELECT d.name FROM dept d WHERE EXISTS
              (SELECT 1 FROM emp e WHERE e.building = d.building)
        """
        graph = db.rewrite(parse_statement(sql), Strategy.MAGIC)
        from repro.qgm.expr import BoxExists
        from repro.qgm.analysis import external_column_refs

        exists_nodes = [
            n
            for b in iter_boxes(graph.root)
            for e in b.own_exprs()
            for n in walk_expr(e)
            if isinstance(n, BoxExists)
        ]
        assert len(exists_nodes) == 1
        ci = exists_nodes[0].box
        assert isinstance(ci, SelectBox)
        # The CI box is correlated (the per-row selection)...
        assert external_column_refs(ci)
        # ...but its input (the decorrelated DS) is not.
        ds = ci.quantifiers[0].box
        assert not external_column_refs(ds)
