"""Unit tests for the cleanup rewrite rules (SPJ merge, trivial removal)."""

from collections import Counter


from repro import Database, Strategy
from repro.exec import execute_graph
from repro.qgm import build_qgm, iter_boxes, validate_graph
from repro.qgm.model import GroupByBox, SelectBox
from repro.rewrite.cleanup import (
    merge_spj_boxes,
    remove_trivial_selects,
    run_cleanup,
)
from repro.sql.parser import parse_statement


def build(sql, catalog):
    graph = build_qgm(parse_statement(sql), catalog)
    validate_graph(graph, catalog)
    return graph


def results(graph, catalog):
    return Counter(execute_graph(graph, catalog)[0])


class TestMergeSPJ:
    def test_derived_table_merged(self, empdept_catalog):
        sql = """
            SELECT t.n FROM (SELECT name AS n FROM dept
                             WHERE budget < 10000) AS t
            WHERE t.n <> 'ops'
        """
        graph = build(sql, empdept_catalog)
        before = results(graph, empdept_catalog)
        n_before = len(list(iter_boxes(graph.root)))
        assert merge_spj_boxes(graph)
        validate_graph(graph, empdept_catalog)
        assert len(list(iter_boxes(graph.root))) < n_before
        assert results(graph, empdept_catalog) == before

    def test_merge_combines_predicates(self, empdept_catalog):
        sql = """
            SELECT t.name FROM (SELECT name, budget FROM dept
                                WHERE building = 'B1') AS t
            WHERE t.budget < 6000
        """
        graph = build(sql, empdept_catalog)
        run_cleanup(graph)
        validate_graph(graph, empdept_catalog)
        root = graph.root
        assert isinstance(root, SelectBox)
        assert len(root.predicates) == 2  # both filters in one box

    def test_distinct_child_not_merged(self, empdept_catalog):
        sql = """
            SELECT t.building FROM
              (SELECT DISTINCT building FROM dept) AS t
        """
        graph = build(sql, empdept_catalog)
        before = results(graph, empdept_catalog)
        run_cleanup(graph)
        validate_graph(graph, empdept_catalog)
        assert results(graph, empdept_catalog) == before
        # The DISTINCT box must survive (merging would change multiplicity).
        assert any(
            isinstance(b, SelectBox) and b.distinct
            for b in iter_boxes(graph.root)
        )

    def test_expression_inlining(self, empdept_catalog):
        sql = """
            SELECT t.double_budget FROM
              (SELECT budget * 2 AS double_budget FROM dept) AS t
            WHERE t.double_budget > 10000
        """
        graph = build(sql, empdept_catalog)
        before = results(graph, empdept_catalog)
        run_cleanup(graph)
        validate_graph(graph, empdept_catalog)
        assert results(graph, empdept_catalog) == before

    def test_nested_merges_to_single_box(self, empdept_catalog):
        sql = """
            SELECT a.n FROM
              (SELECT n FROM (SELECT name AS n FROM dept) AS inner1) AS a
        """
        graph = build(sql, empdept_catalog)
        run_cleanup(graph)
        select_boxes = [
            b for b in iter_boxes(graph.root) if isinstance(b, SelectBox)
        ]
        assert len(select_boxes) == 1

    def test_constant_child_merged(self, empdept_catalog):
        sql = "SELECT t.x FROM (SELECT 1 AS x) AS t, dept d"
        graph = build(sql, empdept_catalog)
        before = results(graph, empdept_catalog)
        run_cleanup(graph)
        validate_graph(graph, empdept_catalog)
        assert results(graph, empdept_catalog) == before


class TestTrivialRemoval:
    def test_projection_under_groupby_bypassed(self, empdept_catalog):
        sql = """
            SELECT count(*) FROM (SELECT building AS b FROM dept) AS t
        """
        graph = build(sql, empdept_catalog)
        before = results(graph, empdept_catalog)
        changed = run_cleanup(graph)
        validate_graph(graph, empdept_catalog)
        assert results(graph, empdept_catalog) == before

    def test_renaming_respected(self, empdept_catalog):
        sql = """
            SELECT s.bb FROM (SELECT building AS bb FROM dept) AS s
        """
        graph = build(sql, empdept_catalog)
        before = results(graph, empdept_catalog)
        run_cleanup(graph)
        validate_graph(graph, empdept_catalog)
        assert results(graph, empdept_catalog) == before


class TestCleanupOnDecorrelatedGraphs:
    def test_magic_graph_is_compact(self, empdept_catalog):
        # After decorrelation + cleanup the paper's example should boil down
        # to: root join box, SUPP, MAGIC (distinct), subquery SPJ, GroupBy,
        # BugRemoval LOJ, plus base tables -- no trivial wrappers left.
        db = Database(empdept_catalog)
        sql = """
            SELECT d.name FROM dept d
            WHERE d.budget < 10000 AND d.num_emps >
              (SELECT count(*) FROM emp e WHERE e.building = d.building)
        """
        graph = db.rewrite(parse_statement(sql), Strategy.MAGIC)
        boxes = list(iter_boxes(graph.root))
        select_boxes = [b for b in boxes if isinstance(b, SelectBox)]
        # root, SUPP, magic (distinct), subquery SPJ
        assert len(select_boxes) <= 4
        group_boxes = [b for b in boxes if isinstance(b, GroupByBox)]
        assert len(group_boxes) == 1

    def test_cleanup_idempotent(self, empdept_catalog):
        sql = "SELECT t.n FROM (SELECT name AS n FROM dept) AS t"
        graph = build(sql, empdept_catalog)
        run_cleanup(graph)
        snapshot = len(list(iter_boxes(graph.root)))
        assert not merge_spj_boxes(graph)
        assert not remove_trivial_selects(graph)
        assert len(list(iter_boxes(graph.root))) == snapshot
