"""Decorrelation correctness: every strategy vs the nested-iteration oracle.

The central invariant: magic decorrelation (and Dayal's method, where
applicable) must produce multiset-identical results to nested iteration.
Kim's method must diverge exactly on COUNT-bug queries (section 2).
"""

from collections import Counter

import pytest

from repro import Database, Strategy
from repro.errors import NotApplicableError


@pytest.fixture
def db(empdept_catalog) -> Database:
    return Database(empdept_catalog)


PAPER_QUERY = """
    Select D.name From Dept D
    Where D.budget < 10000 and D.num_emps >
      (Select Count(*) From Emp E Where D.building = E.building)
"""

MIN_QUERY = """
    SELECT d.name FROM dept d
    WHERE d.budget < 10000 AND d.budget >
      (SELECT min(e.salary) * 10 FROM emp e WHERE e.building = d.building)
"""

SELECT_LIST_QUERY = """
    SELECT d.name, (SELECT sum(e.salary) FROM emp e
                    WHERE e.building = d.building) AS total
    FROM dept d WHERE d.budget < 10000
"""


def run(db, sql, strategy, **kwargs):
    return Counter(db.execute(sql, strategy=strategy, **kwargs).rows)


def assert_same(db, sql, strategies=(Strategy.MAGIC, Strategy.MAGIC_OPT)):
    oracle = run(db, sql, Strategy.NESTED_ITERATION)
    for strategy in strategies:
        assert run(db, sql, strategy) == oracle, strategy


class TestMagicOnPaperExample:
    def test_results_match_ni(self, db):
        assert_same(db, PAPER_QUERY)

    def test_count_bug_department_present(self, db):
        rows = run(db, PAPER_QUERY, Strategy.MAGIC)
        assert ("d_low",) in rows  # building with no employees, count = 0

    def test_no_subquery_invocations_after_magic(self, db):
        result = db.execute(PAPER_QUERY, strategy=Strategy.MAGIC)
        assert result.metrics.subquery_invocations == 0

    def test_ni_does_invoke(self, db):
        result = db.execute(PAPER_QUERY, strategy=Strategy.NESTED_ITERATION)
        assert result.metrics.subquery_invocations == 6

    def test_explain_differs(self, db):
        ni = db.explain(PAPER_QUERY, Strategy.NESTED_ITERATION)
        magic = db.explain(PAPER_QUERY, Strategy.MAGIC)
        assert ni != magic
        assert "OUTERJOIN" in magic  # the BugRemoval box
        assert "coalesce" in magic

    def test_min_aggregate_uses_plain_join(self, db):
        # MIN of an empty group is NULL; the use is null-rejecting, so the
        # paper's plain-join optimisation applies: no outer join needed.
        text = db.explain(MIN_QUERY, Strategy.MAGIC)
        assert "OUTERJOIN" not in text
        assert_same(db, MIN_QUERY)

    def test_select_list_subquery_keeps_loj(self, db):
        # A NULL sum must be *returned*, not filtered: LOJ is mandatory.
        text = db.explain(SELECT_LIST_QUERY, Strategy.MAGIC)
        assert "OUTERJOIN" in text
        assert_same(db, SELECT_LIST_QUERY)
        rows = run(db, SELECT_LIST_QUERY, Strategy.MAGIC)
        assert ("d_low", None) in rows


class TestMagicVariousShapes:
    def test_duplicate_bindings(self, db):
        # B1 and B2 appear in several departments: magic must deduplicate.
        sql = """
            SELECT d.name FROM dept d
            WHERE d.num_emps <= (SELECT count(*) FROM emp e
                                 WHERE e.building = d.building)
        """
        assert_same(db, sql)

    def test_null_binding_count(self, db):
        db.execute_script("INSERT INTO dept VALUES ('d_nb', 100, 0, NULL)")
        # NULL building: count over an empty set is 0, 0 >= 0 holds -> the
        # row must survive decorrelation (null-safe CI join).
        sql = """
            SELECT d.name FROM dept d
            WHERE d.num_emps >= (SELECT count(*) FROM emp e
                                 WHERE e.building = d.building)
        """
        oracle = run(db, sql, Strategy.NESTED_ITERATION)
        assert ("d_nb",) in oracle
        assert_same(db, sql)

    def test_multiple_correlation_columns(self, db):
        sql = """
            SELECT d.name FROM dept d
            WHERE d.num_emps > (SELECT count(*) FROM emp e
                                WHERE e.building = d.building
                                  AND e.salary < d.budget)
        """
        assert_same(db, sql)

    def test_correlation_in_expression(self, db):
        sql = """
            SELECT d.name FROM dept d
            WHERE d.budget > (SELECT sum(e.salary + d.num_emps) FROM emp e
                              WHERE e.building = d.building)
        """
        assert_same(db, sql)

    def test_two_subqueries_same_block(self, db):
        sql = """
            SELECT d.name FROM dept d
            WHERE d.num_emps > (SELECT count(*) FROM emp e
                                WHERE e.building = d.building)
              AND d.budget > (SELECT sum(e2.salary) FROM emp e2
                              WHERE e2.building = d.building)
        """
        assert_same(db, sql)

    def test_multi_level_correlation(self, db):
        sql = """
            SELECT d.name FROM dept d WHERE d.num_emps >
              (SELECT count(*) FROM emp e WHERE e.building = d.building
                 AND e.salary > (SELECT avg(e2.salary) FROM emp e2
                                 WHERE e2.building = d.building))
        """
        assert_same(db, sql)

    def test_correlated_derived_table(self, db):
        sql = """
            SELECT d.name, dt.cnt FROM dept d, DT(cnt) AS
              (SELECT count(*) FROM emp e WHERE e.building = d.building)
            WHERE d.budget < 10000
        """
        assert_same(db, sql)
        result = db.execute(sql, strategy=Strategy.MAGIC)
        assert result.metrics.subquery_invocations == 0

    def test_union_inside_correlated_derived_table(self, db):
        # The shape of the paper's Query 3: sum over a UNION ALL.
        sql = """
            SELECT d.name, dt.s FROM dept d, DT(s) AS
              (SELECT sum(bal) FROM DDT(bal) AS
                ((SELECT e.salary FROM emp e WHERE e.building = d.building)
                 UNION ALL
                 (SELECT e2.salary * 2 FROM emp e2
                  WHERE e2.building = d.building)))
            WHERE d.budget < 10000
        """
        assert_same(db, sql)
        result = db.execute(sql, strategy=Strategy.MAGIC)
        assert result.metrics.subquery_invocations == 0

    def test_union_distinct_subquery(self, db):
        sql = """
            SELECT d.name, dt.s FROM dept d, DT(s) AS
              (SELECT count(bal) FROM DDT(bal) AS
                ((SELECT e.salary FROM emp e WHERE e.building = d.building)
                 UNION
                 (SELECT e2.salary FROM emp e2
                  WHERE e2.building = d.building)))
            WHERE d.budget < 10000
        """
        assert_same(db, sql)

    def test_exists_decorrelated_via_ci(self, db):
        sql = """
            SELECT d.name FROM dept d
            WHERE d.budget < 10000 AND EXISTS
              (SELECT 1 FROM emp e WHERE e.building = d.building
               AND e.salary > 75)
        """
        assert_same(db, sql)
        # Without an index, NI rescans EMP per invocation while the magic
        # CI probes a once-materialised decorrelated result.
        db.catalog.table("emp").drop_index("emp_building")
        result = db.execute(sql, strategy=Strategy.MAGIC)
        ni = db.execute(sql, strategy=Strategy.NESTED_ITERATION)
        assert ni.metrics.rows_scanned > result.metrics.rows_scanned

    def test_not_exists(self, db):
        sql = """
            SELECT d.name FROM dept d
            WHERE NOT EXISTS (SELECT 1 FROM emp e
                              WHERE e.building = d.building)
        """
        assert_same(db, sql)
        assert ("d_low",) in run(db, sql, Strategy.MAGIC)

    def test_correlated_in_subquery(self, db):
        sql = """
            SELECT e.name FROM emp e
            WHERE e.salary IN (SELECT max(e2.salary) FROM emp e2
                               WHERE e2.building = e.building)
        """
        assert_same(db, sql)

    def test_correlated_not_in_with_nulls(self, db):
        db.execute_script("INSERT INTO emp VALUES (8, 'hank', 'B1', NULL)")
        sql = """
            SELECT d.name FROM dept d
            WHERE d.budget NOT IN (SELECT e.salary * 50 FROM emp e
                                   WHERE e.building = d.building)
        """
        assert_same(db, sql)

    def test_correlated_all(self, db):
        sql = """
            SELECT d.name FROM dept d
            WHERE d.budget > ALL (SELECT e.salary * 10 FROM emp e
                                  WHERE e.building = d.building)
        """
        assert_same(db, sql)

    def test_correlated_any(self, db):
        sql = """
            SELECT d.name FROM dept d
            WHERE d.budget < ANY (SELECT e.salary * 100 FROM emp e
                                  WHERE e.building = d.building)
        """
        assert_same(db, sql)

    def test_scalar_non_aggregate_subquery(self, db):
        # Scalar subquery without aggregation: partial decorrelation must
        # preserve per-binding cardinality checks.
        sql = """
            SELECT d.name,
                   (SELECT e.name FROM emp e
                    WHERE e.building = d.building AND e.salary > 110)
            FROM dept d WHERE d.budget < 10000
        """
        assert_same(db, sql)

    def test_uncorrelated_subquery_untouched(self, db):
        sql = """
            SELECT name FROM emp
            WHERE salary > (SELECT avg(salary) FROM emp)
        """
        assert_same(db, sql)

    def test_correlation_under_outer_aggregation(self, db):
        # Query-2 shape: the outer block is itself aggregated.
        sql = """
            SELECT sum(d.budget) FROM dept d
            WHERE d.num_emps > (SELECT count(*) FROM emp e
                                WHERE e.building = d.building)
        """
        assert_same(db, sql)

    def test_wrapped_aggregate_value(self, db):
        # Query-2 shape: arithmetic around the aggregate.
        sql = """
            SELECT e.name FROM emp e
            WHERE e.salary < (SELECT 1.5 * avg(e2.salary) FROM emp e2
                              WHERE e2.building = e.building)
        """
        assert_same(db, sql)

    def test_existential_knob_off(self, db):
        from repro.qgm import build_qgm, validate_graph
        from repro.rewrite.decorrelate import apply_magic
        from repro.sql.parser import parse_statement
        from repro.exec import execute_graph

        sql = """
            SELECT d.name FROM dept d
            WHERE EXISTS (SELECT 1 FROM emp e WHERE e.building = d.building)
        """
        graph = build_qgm(parse_statement(sql), db.catalog)
        graph = apply_magic(graph, db.catalog, decorrelate_existential=False)
        validate_graph(graph, db.catalog)
        rows, metrics = execute_graph(graph, db.catalog)
        oracle = run(db, sql, Strategy.NESTED_ITERATION)
        assert Counter(rows) == oracle
        assert metrics.subquery_invocations > 0  # still nested iteration


class TestKim:
    def test_count_bug_reproduced(self, db):
        ni = run(db, PAPER_QUERY, Strategy.NESTED_ITERATION)
        kim = run(db, PAPER_QUERY, Strategy.KIM)
        assert ("d_low",) in ni
        assert ("d_low",) not in kim  # the COUNT bug
        assert kim == Counter(
            {k: v for k, v in ni.items() if k != ("d_low",)}
        )

    def test_correct_on_min_query(self, db):
        # MIN over an empty group: both NI and Kim drop the row (no bug).
        assert_same(db, MIN_QUERY, strategies=(Strategy.KIM,))

    def test_not_applicable_on_union(self, db):
        sql = """
            SELECT d.name FROM dept d
            WHERE d.num_emps > (SELECT count(*) FROM DDT(b) AS
              ((SELECT e.building FROM emp e WHERE e.building = d.building)
               UNION ALL
               (SELECT e2.building FROM emp e2 WHERE e2.building = d.building)))
        """
        with pytest.raises(NotApplicableError):
            db.execute(sql, strategy=Strategy.KIM)

    def test_not_applicable_on_non_equality(self, db):
        sql = """
            SELECT d.name FROM dept d
            WHERE d.num_emps > (SELECT count(*) FROM emp e
                                WHERE e.salary < d.budget)
        """
        with pytest.raises(NotApplicableError):
            db.execute(sql, strategy=Strategy.KIM)

    def test_not_applicable_on_exists(self, db):
        sql = "SELECT d.name FROM dept d WHERE EXISTS (SELECT 1 FROM emp e WHERE e.building = d.building)"
        with pytest.raises(NotApplicableError):
            db.execute(sql, strategy=Strategy.KIM)

    def test_no_invocations(self, db):
        result = db.execute(PAPER_QUERY, strategy=Strategy.KIM)
        assert result.metrics.subquery_invocations == 0


class TestDayal:
    def test_count_bug_avoided(self, db):
        assert_same(db, PAPER_QUERY, strategies=(Strategy.DAYAL,))

    def test_min_query(self, db):
        assert_same(db, MIN_QUERY, strategies=(Strategy.DAYAL,))

    def test_non_equality_correlation_ok(self, db):
        sql = """
            SELECT d.name FROM dept d
            WHERE d.num_emps > (SELECT count(*) FROM emp e
                                WHERE e.salary < d.budget)
        """
        assert_same(db, sql, strategies=(Strategy.DAYAL,))

    def test_outer_aggregation(self, db):
        sql = """
            SELECT sum(d.budget) FROM dept d
            WHERE d.num_emps > (SELECT count(*) FROM emp e
                                WHERE e.building = d.building)
        """
        assert_same(db, sql, strategies=(Strategy.DAYAL,))

    def test_not_applicable_on_union(self, db):
        sql = """
            SELECT building FROM dept UNION ALL SELECT building FROM emp
        """
        with pytest.raises(NotApplicableError):
            db.execute(sql, strategy=Strategy.DAYAL)

    def test_requires_outer_key(self, db):
        db.execute_script(
            "CREATE TABLE keyless (a INT, b TEXT); "
            "INSERT INTO keyless VALUES (1, 'B1')"
        )
        sql = """
            SELECT k.a FROM keyless k
            WHERE k.a > (SELECT count(*) FROM emp e WHERE e.building = k.b)
        """
        with pytest.raises(NotApplicableError):
            db.execute(sql, strategy=Strategy.DAYAL)
        # magic has no such requirement
        assert_same(db, sql)

    def test_no_invocations(self, db):
        result = db.execute(PAPER_QUERY, strategy=Strategy.DAYAL)
        assert result.metrics.subquery_invocations == 0


class TestGanskiWong:
    def test_single_table_outer(self, db):
        assert_same(db, PAPER_QUERY, strategies=(Strategy.GANSKI_WONG,))

    def test_not_applicable_multi_table_outer(self, db):
        sql = """
            SELECT d.name FROM dept d, emp e0
            WHERE e0.building = d.building AND d.num_emps >
              (SELECT count(*) FROM emp e WHERE e.building = d.building)
        """
        with pytest.raises(NotApplicableError):
            db.execute(sql, strategy=Strategy.GANSKI_WONG)

    def test_magic_projects_fewer_bindings_than_ganski_wong(self, db):
        # Ganski/Wong projects bindings from the *unfiltered* table; magic
        # restricts to the supplementary table first (paper section 7). Give
        # a filtered-out department a building full of employees: Ganski/Wong
        # aggregates over them, magic never sees that binding.
        db.execute_script("INSERT INTO dept VALUES ('huge', 99999, 5, 'BX')")
        rows = ", ".join(
            f"({100 + i}, 'x{i}', 'BX', 10)" for i in range(30)
        )
        db.execute_script(f"INSERT INTO emp VALUES {rows}")
        magic = db.execute(PAPER_QUERY, strategy=Strategy.MAGIC).metrics
        gw = db.execute(PAPER_QUERY, strategy=Strategy.GANSKI_WONG).metrics
        assert (
            Counter(db.execute(PAPER_QUERY, strategy=Strategy.GANSKI_WONG).rows)
            == Counter(db.execute(PAPER_QUERY).rows)
        )
        # The decorrelated subquery aggregates strictly fewer rows under magic.
        assert gw.rows_grouped > magic.rows_grouped


class TestOptMag:
    def test_keyed_supplementary_eliminated(self, db):
        # Correlate on the dept primary key and use a null-rejecting MIN:
        # OptMag can route the supplementary row through the subquery.
        sql = """
            SELECT d.name FROM dept d
            WHERE d.budget < 10000 AND d.budget >
              (SELECT min(e.salary) * 10 FROM emp e WHERE e.building = d.building)
        """
        # here correlation is on building (not a key) -> OptMag == Mag
        assert_same(db, sql)

    def test_key_correlation(self, db):
        db.execute_script(
            "CREATE TABLE dept2 (name TEXT PRIMARY KEY, building TEXT)"
        )
        for row in db.catalog.table("dept").rows:
            db.catalog.table("dept2").insert((row[0], row[3]))
        sql = """
            SELECT d.name FROM dept2 d
            WHERE 100 < (SELECT min(e.salary) FROM emp e
                         WHERE e.building = d.building AND d.name <> 'x')
        """
        assert_same(db, sql)

    def test_optmag_recomputes_less(self, db):
        sql = """
            SELECT d.name FROM dept d
            WHERE d.budget > (SELECT min(e.salary) * 10 FROM emp e
                              WHERE e.building = d.name OR e.building = d.name)
        """
        # correlation on the primary key 'name' with a null-rejecting MIN
        mag = db.execute(sql, strategy=Strategy.MAGIC).metrics
        opt = db.execute(sql, strategy=Strategy.MAGIC_OPT).metrics
        oracle = run(db, sql, Strategy.NESTED_ITERATION)
        assert run(db, sql, Strategy.MAGIC_OPT) == oracle
        assert opt.boxes_recomputed <= mag.boxes_recomputed
