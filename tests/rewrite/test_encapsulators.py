"""Tests for the box-encapsulator registry (paper section 4.4)."""

from collections import Counter


from repro import Database, Strategy
from repro.qgm.model import GroupByBox, OuterJoinBox, SelectBox, SetOpBox
from repro.rewrite.decorrelate.encapsulators import (
    BoxEncapsulator,
    _REGISTRY,
    encapsulator_for,
    register_encapsulator,
    subtree_can_absorb,
)


class TestRegistry:
    def test_builtins_registered(self):
        for kind in (SelectBox, GroupByBox, SetOpBox):
            assert kind in _REGISTRY

    def test_outer_join_is_nm(self, empdept_catalog):
        box = OuterJoinBox.__new__(OuterJoinBox)  # structural check only
        assert encapsulator_for(box) is None

    def test_subclass_inherits_encapsulator(self):
        class MySelect(SelectBox):
            kind = "my_select"

        box = MySelect()
        assert encapsulator_for(box) is _REGISTRY[SelectBox]
        assert subtree_can_absorb(box)

    def test_custom_registration_and_restore(self):
        class WeirdBox(SelectBox):
            kind = "weird"

        calls = []
        custom = BoxEncapsulator(
            can_absorb=lambda box: False,
            absorb=lambda d, box, magic, mapping: calls.append(box) or [],
        )
        register_encapsulator(WeirdBox, custom)
        try:
            box = WeirdBox()
            assert encapsulator_for(box) is custom
            assert not subtree_can_absorb(box)  # declared NM
        finally:
            del _REGISTRY[WeirdBox]

    def test_groupby_capability_recurses(self, empdept_catalog):
        from repro.qgm import build_qgm
        from repro.sql.parser import parse_statement

        graph = build_qgm(
            parse_statement("SELECT count(*) FROM emp"), empdept_catalog
        )
        assert isinstance(graph.root, GroupByBox)
        assert subtree_can_absorb(graph.root)


class TestOuterJoinSubqueries:
    def test_subquery_containing_loj_fully_decorrelated(self, empdept_catalog):
        # The subquery's top box is an SPJ whose FROM contains an outer
        # join; the SPJ encapsulator absorbs the magic table there, so the
        # LOJ's NM status never blocks decorrelation.
        db = Database(empdept_catalog)
        sql = """
            SELECT d.name FROM dept d
            WHERE d.num_emps >= (
              SELECT count(e2.empno) FROM emp e
              LEFT OUTER JOIN emp e2 ON e.salary < e2.salary
              WHERE e.building = d.building)
        """
        oracle = Counter(db.execute(sql).rows)
        magic = db.execute(sql, strategy=Strategy.MAGIC)
        assert Counter(magic.rows) == oracle
        assert magic.metrics.subquery_invocations == 0

    def test_correlation_inside_on_condition(self, empdept_catalog):
        # Correlation *inside* the LOJ's ON condition: the absorb redirects
        # it to the magic quantifier one level up, leaving the outer join
        # locally correlated -- still executable, still correct.
        db = Database(empdept_catalog)
        sql = """
            SELECT d.name FROM dept d
            WHERE d.num_emps >= (
              SELECT count(e2.empno) FROM emp e
              LEFT OUTER JOIN emp e2 ON e2.salary > d.budget / 100
              WHERE e.building = d.building)
        """
        oracle = Counter(db.execute(sql).rows)
        magic = db.execute(sql, strategy=Strategy.MAGIC)
        assert Counter(magic.rows) == oracle
