"""Graceful degradation: the strategy fallback chain and its event log."""

import pytest

from repro import Database, FaultRegistry, Strategy
from repro.errors import FaultInjectedError, NotApplicableError
from repro.rewrite.engine import FALLBACK_CHAIN, DegradationEvent
from repro.tpcd import EMP_DEPT_QUERY

EXISTS_QUERY = (
    "SELECT name FROM dept D WHERE EXISTS "
    "(SELECT 1 FROM emp E WHERE E.building = D.building)"
)


@pytest.fixture(autouse=True)
def _no_ambient_faults(monkeypatch):
    # These tests pin their own registries; an ambient REPRO_FAULTS (the CI
    # fault matrix) must not leak into them.
    monkeypatch.delenv("REPRO_FAULTS", raising=False)


class TestFallbackChain:
    def test_chain_order(self):
        assert FALLBACK_CHAIN == ("magic", "ni")

    def test_not_applicable_degrades_to_magic(self, empdept_catalog):
        db = Database(empdept_catalog)
        # Kim cannot handle existential subqueries; magic can.
        with pytest.raises(NotApplicableError):
            db.execute(EXISTS_QUERY, strategy=Strategy.KIM)
        result = db.execute(EXISTS_QUERY, strategy=Strategy.KIM, fallback=True)
        assert sorted(result.rows) == sorted(db.execute(EXISTS_QUERY).rows)
        assert len(result.degradations) == 1
        event = result.degradations[0]
        assert isinstance(event, DegradationEvent)
        assert event.requested == "kim"
        assert event.attempted == "kim"
        assert event.fallback == "magic"
        assert event.error_type == "NotApplicableError"

    def test_no_degradation_when_strategy_succeeds(self, empdept_catalog):
        db = Database(empdept_catalog)
        result = db.execute(EMP_DEPT_QUERY, strategy=Strategy.MAGIC,
                            fallback=True)
        assert result.degradations == []

    def test_injected_rewrite_fault_degrades_to_ni(self, empdept_catalog):
        # Seed 0 at rate 0.3: the first rewrite.strategy trigger fires, the
        # second does not -- magic fails, NI answers.
        db = Database(
            empdept_catalog,
            faults=FaultRegistry.parse("0:rewrite.strategy=0.3"),
        )
        result = db.execute(EMP_DEPT_QUERY, strategy=Strategy.MAGIC,
                            fallback=True)
        assert sorted(result.rows) == [("d_low",), ("research",), ("sales",)]
        assert [e.attempted for e in result.degradations] == ["magic"]
        assert result.degradations[0].fallback == "ni"
        assert result.degradations[0].error_type == "FaultInjectedError"

    def test_exhausted_chain_raises_with_full_log(self, empdept_catalog):
        db = Database(
            empdept_catalog,
            faults=FaultRegistry.parse("0:rewrite.strategy=1"),
        )
        with pytest.raises(FaultInjectedError):
            db.execute(EMP_DEPT_QUERY, strategy=Strategy.KIM, fallback=True)
        events = db.engine.degradations
        assert [e.attempted for e in events] == ["kim", "magic", "ni"]
        assert events[-1].fallback == ""
        assert all(e.requested == "kim" for e in events)

    def test_degradation_log_is_deterministic(self, empdept_catalog):
        spec = "0:rewrite.strategy=0.3"

        def run():
            db = Database(empdept_catalog, faults=FaultRegistry.parse(spec))
            result = db.execute(EMP_DEPT_QUERY, strategy=Strategy.MAGIC,
                                fallback=True)
            return [
                (e.requested, e.attempted, e.fallback, e.error_type)
                for e in result.degradations
            ], db.faults.log()

        assert run() == run()

    def test_fallback_false_raises_unchanged(self, empdept_catalog):
        db = Database(
            empdept_catalog,
            faults=FaultRegistry.parse("0:rewrite.strategy=1"),
        )
        with pytest.raises(FaultInjectedError):
            db.execute(EMP_DEPT_QUERY, strategy=Strategy.MAGIC)

    def test_requested_ni_still_degradable_chain_of_one_attempt(
        self, empdept_catalog
    ):
        # Requesting NI dedupes the chain to [ni, magic]: NI first, magic
        # only as the (never-reached) alternative.
        db = Database(empdept_catalog)
        result = db.execute(EMP_DEPT_QUERY, strategy=Strategy.NESTED_ITERATION,
                            fallback=True)
        assert result.degradations == []
        assert sorted(result.rows) == [("d_low",), ("research",), ("sales",)]
